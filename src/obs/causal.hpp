// Cross-rank causal tracing: wait-state classification and the critical-path
// analyzer -- the fourth tier of the observability subsystem.
//
// The first three tiers (counters, latency histograms, per-rank lifecycle
// traces) are all *local*: they can say a message was slow, but not whose
// delay made it slow. This tier answers the cross-rank question:
//
//   * Every packet carries a small causal header stamped at the Fabric
//     injection boundary (net/fabric.hpp): the origin's send timestamp
//     (obs::lat_now_ns), a per-rank Lamport logical clock, and -- on the rdma
//     backend -- the nanoseconds the injection stalled waiting for an
//     eager-ring credit. Both netmod backends carry it because the stamp
//     lives in the facade, not the transport.
//   * Clock merge rule: inject ticks the origin's clock and stamps the packet
//     (L := ++clock[src]); poll merges at the receiver
//     (clock[dst] := max(clock[dst], L + 1)). Any event recorded after a
//     delivery therefore carries a logical clock strictly greater than every
//     event that happened-before the send, so a single globally-ordered
//     timeline can be stitched from the per-rank trace rings.
//   * At every match site the receiver decomposes the message's wait interval
//     (first-ready to match) into components and classifies it by the
//     dominant one:
//       late-sender      the send was stamped after the receive was posted
//       late-receiver    the receive was posted after the send was stamped
//       credit-stalled   the injection busy-waited for an eager-ring credit
//       progress-starved residual: both sides were ready, the packet sat
//                        undelivered (nobody polled / wire time)
//     A fifth state, reg-cache-miss, is recorded at the zero-copy rendezvous
//     registration sites when register_memory pays the pin cost. Each state
//     feeds a per-VCI log2 histogram exported through the pvar registry
//     (wait_*_count / wait_*_p99_ns / wait_*_max_ns).
//   * analyze() walks the merged event graph backwards from the last event,
//     at each step following the binding constraint (the latest of
//     "previous event on this rank" and, for deliveries, "the matching
//     inject on the peer"), and reports the end-to-end critical path as a
//     Table-1-style cost breakdown: per-category totals, top-k edges, and
//     per-rank slack. tools/critpath is the CLI over this analysis.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace lwmpi::obs {

// Wait-state taxonomy. None means "not classified" (unsampled message or a
// wait too ambiguous to attribute); the five real states are the ones the
// pvar registry exports.
enum class Wait : std::uint8_t {
  None = 0,
  LateSender,
  LateReceiver,
  ProgressStarved,
  CreditStalled,
  RegCacheMiss,
};
inline constexpr std::size_t kNumWaitStates = 5;  // excluding None

const char* to_string(Wait w) noexcept;
Wait wait_from_string(std::string_view s) noexcept;

// Decomposition of one matched message's wait interval. All inputs come from
// the same obs::lat_now_ns() clock: `posted_ns` from the posted receive,
// `send_ns`/`stall_ns` from the packet's causal header, `now_ns` at the match
// site. Returns the dominant component's state and writes the full interval
// (match minus first-ready side) to *wait_ns.
Wait classify_wait(std::uint64_t posted_ns, std::uint64_t send_ns, std::uint64_t stall_ns,
                   std::uint64_t now_ns, std::uint64_t* wait_ns) noexcept;

// Per-VCI wait-state histogram block: one log2 latency histogram per state.
// Same writer discipline as VciLatency (recorded under the channel lock);
// readers merge across channels through the pvar registry.
struct alignas(64) WaitBlock {
  std::array<LatencyHist, kNumWaitStates> hist{};
  bool enabled = true;

  void record(Wait w, std::uint64_t ns) noexcept {
    if (!enabled || w == Wait::None) return;
    hist[static_cast<std::size_t>(w) - 1].record(ns);
  }
  const LatencyHist& of(Wait w) const noexcept {
    return hist[static_cast<std::size_t>(w) - 1];
  }
};

namespace causal {

// One edge of the extracted critical path, chronological order.
struct PathEdge {
  std::uint64_t from_ts = 0;  // ts_ns of the predecessor event
  std::uint64_t to_ts = 0;    // ts_ns of the successor event
  std::uint64_t dur_ns = 0;
  std::uint64_t seq = 0;        // message chain the edge belongs to (0 = none)
  std::int32_t rank = -1;       // owning rank; -1 for cross-rank (wire) edges
  const char* category = "app";
};

struct RankSlack {
  std::int32_t rank = 0;
  std::uint64_t on_path_ns = 0;  // critical-path time attributed to this rank
  std::uint64_t slack_ns = 0;    // span - on_path_ns
};

struct CategoryCost {
  const char* category = "app";
  std::uint64_t total_ns = 0;
  std::uint64_t edges = 0;
};

struct Analysis {
  std::uint64_t span_ns = 0;  // first event to last event
  std::size_t events = 0;
  std::size_t messages = 0;                // distinct nonzero seqs
  std::vector<PathEdge> path;              // chronological
  std::vector<CategoryCost> by_category;   // sorted by total_ns, descending
  std::vector<RankSlack> ranks;            // sorted by rank
};

// Stitch `events` (from trace::collect_all, any order) into the merged
// timeline and extract the end-to-end critical path. Events with lclock 0
// (pre-causal traces) fall back to timestamp order.
Analysis analyze(std::span<const trace::Event> events);

// Paper-Table-1-style report over an analysis: category breakdown, top-k
// edges by cost, per-rank slack.
std::string render_text(const Analysis& a, std::size_t top_k = 10);
std::string render_json(const Analysis& a, std::size_t top_k = 10);

// Merged-timeline persistence: one JSON object per line per event, ordered by
// (lclock, ts). This is the format World teardown / the watchdog write and
// tools/critpath reads back.
void export_jsonl(std::ostream& os, std::span<const trace::Event> events);
std::vector<trace::Event> parse_jsonl(std::istream& is);

}  // namespace causal
}  // namespace lwmpi::obs
