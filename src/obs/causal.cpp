#include "obs/causal.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <unordered_map>

namespace lwmpi::obs {

const char* to_string(Wait w) noexcept {
  switch (w) {
    case Wait::None: return "none";
    case Wait::LateSender: return "late-sender";
    case Wait::LateReceiver: return "late-receiver";
    case Wait::ProgressStarved: return "progress-starved";
    case Wait::CreditStalled: return "credit-stalled";
    case Wait::RegCacheMiss: return "reg-cache-miss";
  }
  return "?";
}

Wait wait_from_string(std::string_view s) noexcept {
  for (Wait w : {Wait::None, Wait::LateSender, Wait::LateReceiver, Wait::ProgressStarved,
                 Wait::CreditStalled, Wait::RegCacheMiss}) {
    if (s == to_string(w)) return w;
  }
  return Wait::None;
}

Wait classify_wait(std::uint64_t posted_ns, std::uint64_t send_ns, std::uint64_t stall_ns,
                   std::uint64_t now_ns, std::uint64_t* wait_ns) noexcept {
  if (wait_ns) *wait_ns = 0;
  // Either side unstamped: the message fell outside the latency sample (or a
  // pre-causal packet). Nothing defensible to attribute.
  if (posted_ns == 0 || send_ns == 0) return Wait::None;

  const std::uint64_t first = std::min(posted_ns, send_ns);
  const std::uint64_t ready = std::max(posted_ns, send_ns);
  const std::uint64_t wait = now_ns > first ? now_ns - first : 0;
  if (wait_ns) *wait_ns = wait;

  const std::uint64_t lag_sender = send_ns > posted_ns ? send_ns - posted_ns : 0;
  const std::uint64_t lag_recv = posted_ns > send_ns ? posted_ns - send_ns : 0;
  // Time both sides were ready yet the message still wasn't matched. The
  // credit stall is spent inside that window (the sender busy-waits after
  // stamping); whatever it doesn't explain is a progress/wire residual. If
  // the receiver showed up later than the stall ended, the stall overlapped
  // the receiver's absence and lag_recv rightly dominates.
  const std::uint64_t post_ready = now_ns > ready ? now_ns - ready : 0;
  const std::uint64_t credit = std::min<std::uint64_t>(stall_ns, post_ready);
  const std::uint64_t starve = post_ready - credit;

  struct Component {
    std::uint64_t v;
    Wait w;
  };
  const Component comp[] = {
      {credit, Wait::CreditStalled},
      {lag_sender, Wait::LateSender},
      {lag_recv, Wait::LateReceiver},
      {starve, Wait::ProgressStarved},
  };
  std::uint64_t best = 0;
  Wait w = Wait::None;
  for (const Component& c : comp) {
    if (c.v > best) {
      best = c.v;
      w = c.w;
    }
  }
  return w;
}

namespace causal {

namespace {

using trace::Ev;
using trace::Event;

// Lifecycle order for equal-timestamp ties, mirroring the exporter's rule.
int stage_order(Ev e) noexcept {
  switch (e) {
    case Ev::SendPost:
    case Ev::RecvPost: return 0;
    case Ev::Inject: return 1;
    case Ev::Deliver: return 2;
    case Ev::ZcopyWrite: return 2;
    case Ev::Match: return 3;
    case Ev::Complete: return 4;
    case Ev::Alert: return 5;
  }
  return 5;
}

// Global merge order: timestamps are process-wide (all ranks share one steady
// clock), so ts is primary; the Lamport clock breaks ties causally for events
// recorded in the same nanosecond, then lifecycle stage, then seq.
bool merged_before(const Event& a, const Event& b) noexcept {
  if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
  if (a.lclock != b.lclock) return a.lclock < b.lclock;
  if (a.seq != b.seq) return a.seq < b.seq;
  return stage_order(a.kind) < stage_order(b.kind);
}

struct MatchInfo {
  Wait wait = Wait::None;
  std::uint64_t wait_ns = 0;
};

// `post_wait` is the classification of the next Match on `to`'s rank -- the
// message a RecvPost eventually paired with. RecvPost events carry seq 0 (the
// receiver cannot know the sender-assigned id before the match), so blame for
// the gap in front of a late post has to come from that lookahead instead of
// the seq table.
const char* categorize(const Event& from, const Event& to, Wait post_wait,
                       const std::unordered_map<std::uint64_t, MatchInfo>& matches) {
  auto wait_of = [&](std::uint64_t seq) {
    auto it = matches.find(seq);
    return it == matches.end() ? Wait::None : it->second.wait;
  };
  if (from.rank != to.rank) {
    // Cross-rank (wire) edge: an Inject binding a Deliver. Refine by how the
    // receiver classified this message's wait.
    const Wait w = wait_of(to.seq);
    if (w == Wait::CreditStalled) return "credit_stalled";
    if (w == Wait::ProgressStarved) return "progress_starved";
    return "wire";
  }
  if (to.seq != 0 && from.seq == to.seq) {
    // Software path inside one message's lifecycle.
    switch (to.kind) {
      case Ev::Match:
        return wait_of(to.seq) == Wait::LateReceiver ? "late_receiver" : "sw_match";
      case Ev::Inject: return "sw_inject";
      case Ev::Deliver: return "sw_progress";
      case Ev::ZcopyWrite: return "sw_zcopy";
      case Ev::Complete: return "sw_complete";
      default: return "sw";
    }
  }
  // Application gap between messages on one rank. If the next message's
  // receiver blamed this side, surface that blame here: the gap before a
  // SendPost of a late-sender message *is* the late-sender time.
  if (to.kind == Ev::SendPost && wait_of(to.seq) == Wait::LateSender) return "late_sender";
  if (to.kind == Ev::RecvPost && post_wait == Wait::LateReceiver) return "late_receiver";
  return "app";
}

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

Analysis analyze(std::span<const Event> events) {
  Analysis a;
  if (events.empty()) return a;

  std::vector<Event> ev(events.begin(), events.end());
  std::stable_sort(ev.begin(), ev.end(), merged_before);
  a.events = ev.size();
  a.span_ns = ev.back().ts_ns - ev.front().ts_ns;

  // Indexes: per-rank event positions, per-seq match classification, and the
  // set of distinct messages.
  std::unordered_map<std::int32_t, std::vector<std::size_t>> by_rank;
  std::unordered_map<std::uint64_t, MatchInfo> matches;
  std::vector<std::size_t> rank_pos(ev.size(), 0);  // position within by_rank list
  {
    std::unordered_map<std::uint64_t, bool> seen_seq;
    for (std::size_t i = 0; i < ev.size(); ++i) {
      auto& lst = by_rank[ev[i].rank];
      rank_pos[i] = lst.size();
      lst.push_back(i);
      if (ev[i].seq != 0) seen_seq[ev[i].seq] = true;
      if (ev[i].kind == Ev::Match && ev[i].seq != 0) {
        matches[ev[i].seq] = MatchInfo{static_cast<Wait>(ev[i].wait), ev[i].wait_ns};
      }
    }
    a.messages = seen_seq.size();
  }

  // Per-RecvPost lookahead: the wait classification of the next Match on the
  // same rank (see categorize).
  std::vector<Wait> post_wait(ev.size(), Wait::None);
  for (const auto& [rank, lst] : by_rank) {
    Wait next = Wait::None;
    for (std::size_t k = lst.size(); k-- > 0;) {
      const Event& e = ev[lst[k]];
      if (e.kind == Ev::Match && e.seq != 0) {
        next = static_cast<Wait>(e.wait);
      } else if (e.kind == Ev::RecvPost) {
        post_wait[lst[k]] = next;
      }
    }
  }

  // Backward walk from the last event. At each step the predecessor is the
  // *binding constraint*: the latest of (previous event on this rank, the
  // matching Inject on the peer for a Deliver). Global sort order guarantees
  // the predecessor index strictly decreases, so the walk terminates.
  std::vector<PathEdge> path;
  std::size_t cur = ev.size() - 1;
  while (cur > 0) {
    const Event& e = ev[cur];
    bool have_pred = false;
    std::size_t pred = 0;

    if (rank_pos[cur] > 0) {
      pred = by_rank[e.rank][rank_pos[cur] - 1];
      have_pred = true;
    }
    if (e.kind == Ev::Deliver && e.seq != 0) {
      // Matching inject: same seq, recorded by the peer, not after us.
      std::size_t best_inj = 0;
      bool found = false;
      for (std::size_t j = cur; j-- > 0;) {
        const Event& c = ev[j];
        if (c.kind == Ev::Inject && c.seq == e.seq && c.rank == e.peer) {
          best_inj = j;
          found = true;
          break;
        }
      }
      if (found && (!have_pred || ev[best_inj].ts_ns >= ev[pred].ts_ns)) {
        pred = best_inj;
        have_pred = true;
      }
    }
    if (!have_pred || pred >= cur) break;

    const Event& p = ev[pred];
    PathEdge edge;
    edge.from_ts = p.ts_ns;
    edge.to_ts = e.ts_ns;
    edge.dur_ns = e.ts_ns >= p.ts_ns ? e.ts_ns - p.ts_ns : 0;
    edge.seq = e.seq;
    edge.rank = p.rank == e.rank ? e.rank : -1;
    edge.category = categorize(p, e, post_wait[cur], matches);
    path.push_back(edge);
    cur = pred;
  }
  std::reverse(path.begin(), path.end());
  a.path = std::move(path);

  // Category totals, descending.
  {
    std::vector<CategoryCost> costs;
    for (const PathEdge& e : a.path) {
      auto it = std::find_if(costs.begin(), costs.end(), [&](const CategoryCost& c) {
        return std::string_view(c.category) == e.category;
      });
      if (it == costs.end()) {
        costs.push_back({e.category, e.dur_ns, 1});
      } else {
        it->total_ns += e.dur_ns;
        ++it->edges;
      }
    }
    std::sort(costs.begin(), costs.end(),
              [](const CategoryCost& x, const CategoryCost& y) {
                return x.total_ns > y.total_ns;
              });
    a.by_category = std::move(costs);
  }

  // Per-rank slack: span minus the critical-path time spent on that rank.
  {
    std::unordered_map<std::int32_t, std::uint64_t> on_path;
    for (const auto& [rank, lst] : by_rank) on_path.emplace(rank, 0);
    for (const PathEdge& e : a.path) {
      if (e.rank >= 0) on_path[e.rank] += e.dur_ns;
    }
    for (const auto& [rank, ns] : on_path) {
      RankSlack rs;
      rs.rank = rank;
      rs.on_path_ns = ns;
      rs.slack_ns = a.span_ns > ns ? a.span_ns - ns : 0;
      a.ranks.push_back(rs);
    }
    std::sort(a.ranks.begin(), a.ranks.end(),
              [](const RankSlack& x, const RankSlack& y) { return x.rank < y.rank; });
  }
  return a;
}

std::string render_text(const Analysis& a, std::size_t top_k) {
  std::ostringstream os;
  os << "== critical path ================================================\n";
  os << "span " << a.span_ns << " ns | events " << a.events << " | messages "
     << a.messages << " | path edges " << a.path.size() << "\n";

  os << "-- cost by category ---------------------------------------------\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %14s %8s %7s\n", "category", "total_ns",
                "edges", "share");
  os << line;
  for (const CategoryCost& c : a.by_category) {
    const double share = a.span_ns ? 100.0 * static_cast<double>(c.total_ns) /
                                         static_cast<double>(a.span_ns)
                                   : 0.0;
    std::snprintf(line, sizeof(line), "%-18s %14llu %8llu %6.1f%%\n", c.category,
                  static_cast<unsigned long long>(c.total_ns),
                  static_cast<unsigned long long>(c.edges), share);
    os << line;
  }

  os << "-- top path edges -----------------------------------------------\n";
  std::vector<PathEdge> top(a.path.begin(), a.path.end());
  std::sort(top.begin(), top.end(),
            [](const PathEdge& x, const PathEdge& y) { return x.dur_ns > y.dur_ns; });
  if (top.size() > top_k) top.resize(top_k);
  std::snprintf(line, sizeof(line), "%-4s %-18s %14s %8s %6s\n", "#", "category",
                "dur_ns", "seq", "rank");
  os << line;
  for (std::size_t i = 0; i < top.size(); ++i) {
    std::snprintf(line, sizeof(line), "%-4zu %-18s %14llu %8llu %6d\n", i + 1,
                  top[i].category, static_cast<unsigned long long>(top[i].dur_ns),
                  static_cast<unsigned long long>(top[i].seq), top[i].rank);
    os << line;
  }

  os << "-- per-rank slack -----------------------------------------------\n";
  std::snprintf(line, sizeof(line), "%-6s %14s %14s\n", "rank", "on_path_ns",
                "slack_ns");
  os << line;
  for (const RankSlack& r : a.ranks) {
    std::snprintf(line, sizeof(line), "%-6d %14llu %14llu\n", r.rank,
                  static_cast<unsigned long long>(r.on_path_ns),
                  static_cast<unsigned long long>(r.slack_ns));
    os << line;
  }
  return os.str();
}

std::string render_json(const Analysis& a, std::size_t top_k) {
  std::ostringstream os;
  os << "{\"span_ns\":" << a.span_ns << ",\"events\":" << a.events
     << ",\"messages\":" << a.messages << ",\"by_category\":[";
  for (std::size_t i = 0; i < a.by_category.size(); ++i) {
    const CategoryCost& c = a.by_category[i];
    if (i) os << ",";
    os << "{\"category\":\"";
    json_escape(os, c.category);
    os << "\",\"total_ns\":" << c.total_ns << ",\"edges\":" << c.edges << "}";
  }
  os << "],\"top_edges\":[";
  std::vector<PathEdge> top(a.path.begin(), a.path.end());
  std::sort(top.begin(), top.end(),
            [](const PathEdge& x, const PathEdge& y) { return x.dur_ns > y.dur_ns; });
  if (top.size() > top_k) top.resize(top_k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const PathEdge& e = top[i];
    if (i) os << ",";
    os << "{\"category\":\"";
    json_escape(os, e.category);
    os << "\",\"dur_ns\":" << e.dur_ns << ",\"seq\":" << e.seq << ",\"rank\":" << e.rank
       << ",\"from_ts\":" << e.from_ts << ",\"to_ts\":" << e.to_ts << "}";
  }
  os << "],\"ranks\":[";
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    const RankSlack& r = a.ranks[i];
    if (i) os << ",";
    os << "{\"rank\":" << r.rank << ",\"on_path_ns\":" << r.on_path_ns
       << ",\"slack_ns\":" << r.slack_ns << "}";
  }
  os << "]}";
  return os.str();
}

void export_jsonl(std::ostream& os, std::span<const Event> events) {
  std::vector<Event> ev(events.begin(), events.end());
  std::stable_sort(ev.begin(), ev.end(), merged_before);
  for (const Event& e : ev) {
    os << "{\"kind\":\"" << trace::to_string(e.kind) << "\",\"ts\":" << e.ts_ns
       << ",\"seq\":" << e.seq << ",\"bytes\":" << e.bytes << ",\"lclock\":" << e.lclock
       << ",\"rank\":" << e.rank << ",\"peer\":" << e.peer << ",\"tag\":" << e.tag
       << ",\"vci\":" << static_cast<int>(e.vci) << ",\"wait\":\""
       << obs::to_string(static_cast<Wait>(e.wait)) << "\",\"wait_ns\":" << e.wait_ns
       << "}\n";
  }
}

namespace {

// Minimal per-line field extraction for the JSONL traces we ourselves write:
// flat objects, numeric fields or simple quoted strings, no nesting.
bool find_field(const std::string& line, std::string_view key, std::string& out) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    out = line.substr(i + 1, end - i - 1);
  } else {
    std::size_t end = i;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    out = line.substr(i, end - i);
  }
  return true;
}

std::uint64_t to_u64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}
std::int64_t to_i64(const std::string& s) {
  return s.empty() ? 0 : std::strtoll(s.c_str(), nullptr, 10);
}

}  // namespace

std::vector<Event> parse_jsonl(std::istream& is) {
  std::vector<Event> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find('{') == std::string::npos) continue;
    Event e;
    std::string v;
    if (find_field(line, "kind", v)) e.kind = trace::ev_from_string(v);
    if (find_field(line, "ts", v)) e.ts_ns = to_u64(v);
    if (find_field(line, "seq", v)) e.seq = to_u64(v);
    if (find_field(line, "bytes", v)) e.bytes = to_u64(v);
    if (find_field(line, "lclock", v)) e.lclock = to_u64(v);
    if (find_field(line, "rank", v)) e.rank = static_cast<std::int32_t>(to_i64(v));
    if (find_field(line, "peer", v)) e.peer = static_cast<std::int32_t>(to_i64(v));
    if (find_field(line, "tag", v)) e.tag = static_cast<std::int32_t>(to_i64(v));
    if (find_field(line, "vci", v)) e.vci = static_cast<std::uint8_t>(to_u64(v));
    if (find_field(line, "wait", v))
      e.wait = static_cast<std::uint8_t>(wait_from_string(v));
    if (find_field(line, "wait_ns", v)) e.wait_ns = to_u64(v);
    out.push_back(e);
  }
  return out;
}

}  // namespace causal
}  // namespace lwmpi::obs
