// Aggregate profiler implementation (obs/profiler.hpp): accumulator storage,
// phase interning, and the two renderers -- the merged cross-rank report and
// the versioned profile artifact consumed by tools/lwmpi_prof and
// bench_check --profcheck.
#include "obs/profiler.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace lwmpi::obs {

std::string_view to_string(Callsite s) noexcept {
  switch (s) {
    case Callsite::Isend: return "isend";
    case Callsite::Irecv: return "irecv";
    case Callsite::Send: return "send";
    case Callsite::Recv: return "recv";
    case Callsite::Sendrecv: return "sendrecv";
    case Callsite::Wait: return "wait";
    case Callsite::Test: return "test";
    case Callsite::Waitall: return "waitall";
    case Callsite::Waitany: return "waitany";
    case Callsite::Testany: return "testany";
    case Callsite::Testall: return "testall";
    case Callsite::Iprobe: return "iprobe";
    case Callsite::Probe: return "probe";
    case Callsite::Cancel: return "cancel";
    case Callsite::IsendGlobal: return "isend_global";
    case Callsite::IsendNpn: return "isend_npn";
    case Callsite::IsendNoreq: return "isend_noreq";
    case Callsite::CommWaitall: return "comm_waitall";
    case Callsite::IsendNomatch: return "isend_nomatch";
    case Callsite::IrecvNomatch: return "irecv_nomatch";
    case Callsite::IsendAllOpts: return "isend_all_opts";
    case Callsite::SendInit: return "send_init";
    case Callsite::RecvInit: return "recv_init";
    case Callsite::Start: return "start";
    case Callsite::Startall: return "startall";
    case Callsite::Barrier: return "barrier";
    case Callsite::Bcast: return "bcast";
    case Callsite::Reduce: return "reduce";
    case Callsite::Allreduce: return "allreduce";
    case Callsite::Gather: return "gather";
    case Callsite::Allgather: return "allgather";
    case Callsite::Scatter: return "scatter";
    case Callsite::Alltoall: return "alltoall";
    case Callsite::Scan: return "scan";
    case Callsite::Gatherv: return "gatherv";
    case Callsite::Allgatherv: return "allgatherv";
    case Callsite::Scatterv: return "scatterv";
    case Callsite::ReduceScatterBlock: return "reduce_scatter_block";
    case Callsite::Put: return "put";
    case Callsite::Get: return "get";
    case Callsite::Accumulate: return "accumulate";
    case Callsite::GetAccumulate: return "get_accumulate";
    case Callsite::PutVa: return "put_va";
    case Callsite::WinFence: return "win_fence";
    case Callsite::WinLock: return "win_lock";
    case Callsite::WinUnlock: return "win_unlock";
    case Callsite::WinFlush: return "win_flush";
    case Callsite::WinPost: return "win_post";
    case Callsite::WinStart: return "win_start";
    case Callsite::WinComplete: return "win_complete";
    case Callsite::WinWait: return "win_wait";
    case Callsite::kCount: break;
  }
  return "?";
}

std::string_view to_string(MsgClass c) noexcept {
  switch (c) {
    case MsgClass::Eager: return "eager";
    case MsgClass::Rdv: return "rdv";
    case MsgClass::Ctrl: return "ctrl";
    case MsgClass::Zcopy: return "zcopy";
    case MsgClass::kCount: break;
  }
  return "?";
}

namespace {

// JSON string escape for user-supplied phase names (same repertoire as
// bench::JsonResult: quotes, backslash, and control chars -> \uXXXX).
std::string jesc(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (u < 0x20) {
      static const char* hex = "0123456789abcdef";
      out += "\\u00";
      out += hex[u >> 4];
      out += hex[u & 0xF];
    } else {
      out += ch;
    }
  }
  return out;
}

std::string human_bytes(std::uint64_t b) {
  std::ostringstream o;
  o << std::fixed << std::setprecision(1);
  if (b >= (1ull << 30)) {
    o << static_cast<double>(b) / (1ull << 30) << "GiB";
  } else if (b >= (1ull << 20)) {
    o << static_cast<double>(b) / (1ull << 20) << "MiB";
  } else if (b >= (1ull << 10)) {
    o << static_cast<double>(b) / (1ull << 10) << "KiB";
  } else {
    o << b << "B";
  }
  return o.str();
}

}  // namespace

// --- CommMatrix -------------------------------------------------------------

namespace {
// Monotonic instance ids so a thread's RowCache from a destroyed matrix can
// never validate against a new one (ids start at 1; caches start at 0).
std::atomic<std::uint64_t> g_matrix_id{0};
}  // namespace

CommMatrix::CommMatrix(int nranks)
    : n_(nranks < 0 ? 0 : nranks), id_(g_matrix_id.fetch_add(1) + 1) {}

CommMatrix::Cell* CommMatrix::lookup_row(RowCache& rc, Rank src) noexcept {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lk(mu_);
  for (RowEntry& e : rows_) {
    if (e.tid == tid && e.src == src) {
      rc = RowCache{id_, src, e.row.get()};
      return e.row.get();
    }
  }
  RowEntry e;
  e.tid = tid;
  e.src = src;
  e.row = std::make_unique<Cell[]>(static_cast<std::size_t>(n_) * kNumMsgClasses);
  Cell* row = e.row.get();
  rows_.push_back(std::move(e));
  rc = RowCache{id_, src, row};
  return row;
}

// cls >= 0: that class only; -1: all classes; -2: packet classes (no Zcopy).
std::uint64_t CommMatrix::sum(Rank src, Rank dst, int cls, bool counts) const noexcept {
  std::uint64_t t = 0;
  std::lock_guard<std::mutex> lk(mu_);
  for (const RowEntry& e : rows_) {
    if (src >= 0 && e.src != src) continue;
    const Rank d0 = dst >= 0 ? dst : 0;
    const Rank d1 = dst >= 0 ? dst + 1 : n_;
    for (Rank d = d0; d < d1; ++d) {
      for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        if (cls >= 0 && static_cast<int>(c) != cls) continue;
        if (cls == -2 && static_cast<MsgClass>(c) == MsgClass::Zcopy) continue;
        const Cell& cell = e.row[static_cast<std::size_t>(d) * kNumMsgClasses + c];
        t += counts ? cell.count.load(std::memory_order_relaxed)
                    : cell.bytes.load(std::memory_order_relaxed);
      }
    }
  }
  return t;
}

std::uint64_t CommMatrix::count(Rank src, Rank dst, MsgClass cls) const noexcept {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) return 0;
  return sum(src, dst, static_cast<int>(cls), /*counts=*/true);
}

std::uint64_t CommMatrix::bytes(Rank src, Rank dst, MsgClass cls) const noexcept {
  if (src < 0 || src >= n_ || dst < 0 || dst >= n_) return 0;
  return sum(src, dst, static_cast<int>(cls), /*counts=*/false);
}

std::uint64_t CommMatrix::tx_bytes(Rank src, bool include_zcopy) const noexcept {
  return sum(src, -1, include_zcopy ? -1 : -2, /*counts=*/false);
}

std::uint64_t CommMatrix::rx_bytes(Rank dst, bool include_zcopy) const noexcept {
  return sum(-1, dst, include_zcopy ? -1 : -2, /*counts=*/false);
}

std::uint64_t CommMatrix::tx_msgs(Rank src) const noexcept {
  return sum(src, -1, -2, /*counts=*/true);
}

std::uint64_t CommMatrix::rx_msgs(Rank dst) const noexcept {
  return sum(-1, dst, -2, /*counts=*/true);
}

std::uint64_t CommMatrix::total_packet_bytes() const noexcept {
  return sum(-1, -1, -2, /*counts=*/false);
}

std::uint64_t CommMatrix::total_zcopy_bytes() const noexcept {
  return sum(-1, -1, static_cast<int>(MsgClass::Zcopy), /*counts=*/false);
}

// --- RankProf ---------------------------------------------------------------

RankProf::RankProf(Profiler& owner, int nvcis)
    : owner_(owner), nvcis_(nvcis < 1 ? 1 : nvcis) {
  for (auto& s : slabs_) s.store(nullptr, std::memory_order_relaxed);
  cur_slab_.store(alloc_slab(0), std::memory_order_release);
}

RankProf::~RankProf() {
  for (auto& s : slabs_) delete[] s.load(std::memory_order_relaxed);
}

void RankProf::phase_push(std::string_view name) { phase_push(owner_.intern_phase(name)); }

void RankProf::phase_push(int phase_id) noexcept {
  if (phase_id < 0 || phase_id >= kMaxPhases) phase_id = 0;
  std::lock_guard<std::mutex> lk(stack_mu_);
  if (static_cast<int>(stack_.size()) >= kMaxPhaseDepth) {
    // Depth misuse mirrors pop misuse: count it, stay where we are.
    pop_warnings_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stack_.push_back(phase_id);
  cur_phase_.store(phase_id, std::memory_order_relaxed);
  publish_cur_slab(phase_id);
  depth_.store(static_cast<int>(stack_.size()), std::memory_order_relaxed);
}

void RankProf::phase_pop() noexcept {
  std::lock_guard<std::mutex> lk(stack_mu_);
  if (stack_.empty()) {
    pop_warnings_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stack_.pop_back();
  const int phase = stack_.empty() ? 0 : stack_.back();
  cur_phase_.store(phase, std::memory_order_relaxed);
  publish_cur_slab(phase);
  depth_.store(static_cast<int>(stack_.size()), std::memory_order_relaxed);
}

void RankProf::publish_cur_slab(int phase) noexcept {
  CallCell* slab = slabs_[static_cast<std::size_t>(phase)].load(std::memory_order_acquire);
  if (slab == nullptr) slab = alloc_slab(phase);
  cur_slab_.store(slab, std::memory_order_release);
}

ProfScope::Armed ProfScope::arm(Tls& t) noexcept {
  Armed a;
  a.t0 = lat_now_ns();  // never 0, so 0 marks "not sampled"
  if (const cost::Meter* m = cost::tl_meter()) {
    t.m0 = m->snapshot();
    a.metered = true;
  }
  return a;
}

void ProfScope::finish(CallCell* cell, std::uint64_t bytes, std::uint64_t t0, bool metered,
                       const Tls* tls) noexcept {
  cell->add(bytes, (lat_now_ns() - t0) << kProfSampleShift);
  if (metered) {
    if (const cost::Meter* m = cost::tl_meter()) {
      // One pass over the categories, bucketing deltas by group, instead of
      // kNumGroups full scans via Snapshot::group().
      const cost::Meter::Snapshot m1 = m->snapshot();
      std::array<std::uint64_t, cost::kNumGroups> by_group{};
      for (std::size_t c = 0; c < cost::kNumCategories; ++c) {
        const auto grp = cost::group_of(static_cast<cost::Category>(c));
        by_group[static_cast<std::size_t>(grp)] +=
            m1.by_category[c] - tls->m0.by_category[c];
      }
      for (std::size_t g = 0; g < cost::kNumGroups; ++g) {
        auto& slot = cell->instr[g];
        slot.store(slot.load(std::memory_order_relaxed) + (by_group[g] << kProfSampleShift),
                   std::memory_order_relaxed);
      }
    }
  }
}

CallCell* RankProf::alloc_slab(int phase) noexcept {
  auto& slot = slabs_[static_cast<std::size_t>(phase)];
  CallCell* slab = nullptr;
  auto* fresh = new CallCell[kNumCallsites * static_cast<std::size_t>(nvcis_)];
  if (slot.compare_exchange_strong(slab, fresh, std::memory_order_acq_rel)) {
    return fresh;
  }
  delete[] fresh;  // another thread won the publication race
  return slab;
}

const CallCell* RankProf::peek(int phase, Callsite site, int vci) const noexcept {
  if (phase < 0 || phase >= kMaxPhases || vci < 0 || vci >= nvcis_) return nullptr;
  const CallCell* slab = slabs_[static_cast<std::size_t>(phase)].load(std::memory_order_acquire);
  if (slab == nullptr) return nullptr;
  return &slab[static_cast<std::size_t>(site) * static_cast<std::size_t>(nvcis_) +
               static_cast<std::size_t>(vci)];
}

std::uint64_t RankProf::site_count(int phase, Callsite site) const noexcept {
  std::uint64_t t = 0;
  for (int v = 0; v < nvcis_; ++v) {
    if (const CallCell* c = peek(phase, site, v)) {
      t += c->count.load(std::memory_order_relaxed);
    }
  }
  return t;
}

std::uint64_t RankProf::site_bytes(int phase, Callsite site) const noexcept {
  std::uint64_t t = 0;
  for (int v = 0; v < nvcis_; ++v) {
    if (const CallCell* c = peek(phase, site, v)) {
      t += c->bytes.load(std::memory_order_relaxed);
    }
  }
  return t;
}

std::uint64_t RankProf::phase_time_ns(int phase) const noexcept {
  std::uint64_t t = 0;
  for (std::size_t s = 0; s < kNumCallsites; ++s) {
    for (int v = 0; v < nvcis_; ++v) {
      if (const CallCell* c = peek(phase, static_cast<Callsite>(s), v)) {
        t += c->time_ns.load(std::memory_order_relaxed);
      }
    }
  }
  return t;
}

// --- Profiler ---------------------------------------------------------------

Profiler::Profiler(int nranks, int nvcis, std::string_view default_phase)
    : nranks_(nranks < 0 ? 0 : nranks), nvcis_(nvcis < 1 ? 1 : nvcis), matrix_(nranks_) {
  phases_.emplace_back(default_phase.empty() ? "main" : std::string(default_phase));
  ranks_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    ranks_.push_back(std::make_unique<RankProf>(*this, nvcis_));
  }
}

int Profiler::intern_phase(std::string_view name) {
  std::lock_guard<std::mutex> lk(phase_mu_);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i] == name) return static_cast<int>(i);
  }
  if (static_cast<int>(phases_.size()) >= kMaxPhases) {
    phase_overflows_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  phases_.emplace_back(name);
  return static_cast<int>(phases_.size() - 1);
}

int Profiler::num_phases() const {
  std::lock_guard<std::mutex> lk(phase_mu_);
  return static_cast<int>(phases_.size());
}

std::string Profiler::phase_name(int id) const {
  std::lock_guard<std::mutex> lk(phase_mu_);
  if (id < 0 || id >= static_cast<int>(phases_.size())) return "?";
  return phases_[static_cast<std::size_t>(id)];
}

std::string Profiler::report(std::string_view netmod, bool as_json) const {
  const int np = num_phases();
  std::ostringstream o;
  if (as_json) {
    o << "{\"nranks\":" << nranks_ << ",\"netmod\":\"" << netmod << "\",\"phases\":[";
  } else {
    o << "=== lwmpi profile: " << nranks_ << " rank(s), netmod " << netmod << " ===\n";
  }

  for (int ph = 0; ph < np; ++ph) {
    // Load-imbalance metrics: max/mean MPI time across ranks for this phase.
    std::uint64_t max_ns = 0;
    std::uint64_t sum_ns = 0;
    int max_rank = 0;
    for (int r = 0; r < nranks_; ++r) {
      const std::uint64_t t = rank(r).phase_time_ns(ph);
      sum_ns += t;
      if (t > max_ns) {
        max_ns = t;
        max_rank = r;
      }
    }
    const double mean_ns =
        nranks_ > 0 ? static_cast<double>(sum_ns) / nranks_ : 0.0;
    const double imbalance = mean_ns > 0.0 ? static_cast<double>(max_ns) / mean_ns : 1.0;
    if (sum_ns == 0 && ph != 0) continue;  // phase named but never used

    // Top callsites by total time across ranks.
    struct SiteAgg {
      Callsite site;
      std::uint64_t count, bytes, time_ns;
    };
    std::vector<SiteAgg> sites;
    for (std::size_t s = 0; s < kNumCallsites; ++s) {
      SiteAgg a{static_cast<Callsite>(s), 0, 0, 0};
      for (int r = 0; r < nranks_; ++r) {
        const RankProf& rp = rank(r);
        a.count += rp.site_count(ph, a.site);
        a.bytes += rp.site_bytes(ph, a.site);
        for (int v = 0; v < nvcis_; ++v) {
          if (const CallCell* c = rp.peek(ph, a.site, v)) {
            a.time_ns += c->time_ns.load(std::memory_order_relaxed);
          }
        }
      }
      if (a.count != 0) sites.push_back(a);
    }
    std::sort(sites.begin(), sites.end(),
              [](const SiteAgg& a, const SiteAgg& b) { return a.time_ns > b.time_ns; });
    constexpr std::size_t kTopK = 5;
    if (sites.size() > kTopK) sites.resize(kTopK);

    if (as_json) {
      o << (ph == 0 ? "" : ",") << "{\"phase\":\"" << jesc(phase_name(ph))
        << "\",\"max_ns\":" << max_ns << ",\"mean_ns\":" << static_cast<std::uint64_t>(mean_ns)
        << ",\"imbalance\":" << std::fixed << std::setprecision(3) << imbalance
        << ",\"max_rank\":" << max_rank << ",\"top_callsites\":[";
      for (std::size_t i = 0; i < sites.size(); ++i) {
        o << (i == 0 ? "" : ",") << "{\"site\":\"" << to_string(sites[i].site)
          << "\",\"count\":" << sites[i].count << ",\"bytes\":" << sites[i].bytes
          << ",\"time_ns\":" << sites[i].time_ns << '}';
      }
      o << "]}";
    } else {
      o << "phase \"" << phase_name(ph) << "\": mpi time max=" << max_ns / 1000
        << "us (rank " << max_rank << ") mean=" << static_cast<std::uint64_t>(mean_ns) / 1000
        << "us imbalance=" << std::fixed << std::setprecision(2) << imbalance << "x\n";
      for (const auto& s : sites) {
        o << "  " << to_string(s.site);
        for (std::size_t pad = to_string(s.site).size(); pad < 22; ++pad) o << ' ';
        o << " count=" << s.count << " bytes=" << human_bytes(s.bytes)
          << " time=" << s.time_ns / 1000 << "us\n";
      }
    }
  }

  // Matrix hot spots: the heaviest (src, dst) pairs by bytes, all classes.
  struct Hot {
    Rank src, dst;
    std::uint64_t bytes;
  };
  std::vector<Hot> hot;
  for (Rank s = 0; s < nranks_; ++s) {
    for (Rank d = 0; d < nranks_; ++d) {
      std::uint64_t b = 0;
      for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        b += matrix_.bytes(s, d, static_cast<MsgClass>(c));
      }
      if (b != 0) hot.push_back(Hot{s, d, b});
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.bytes > b.bytes; });
  constexpr std::size_t kHotK = 3;
  if (hot.size() > kHotK) hot.resize(kHotK);

  if (as_json) {
    o << "],\"hot_pairs\":[";
    for (std::size_t i = 0; i < hot.size(); ++i) {
      o << (i == 0 ? "" : ",") << "{\"src\":" << hot[i].src << ",\"dst\":" << hot[i].dst
        << ",\"bytes\":" << hot[i].bytes << '}';
    }
    o << "],\"total_packet_bytes\":" << matrix_.total_packet_bytes()
      << ",\"total_zcopy_bytes\":" << matrix_.total_zcopy_bytes() << '}';
  } else {
    if (!hot.empty()) {
      o << "comm matrix hot spots:\n";
      for (const auto& h : hot) {
        o << "  " << h.src << " -> " << h.dst << "  " << human_bytes(h.bytes) << '\n';
      }
    }
    o << "matrix totals: packet=" << human_bytes(matrix_.total_packet_bytes())
      << " zcopy=" << human_bytes(matrix_.total_zcopy_bytes()) << '\n';
  }
  return o.str();
}

std::string Profiler::artifact_json(std::string_view netmod) const {
  const int np = num_phases();
  std::ostringstream o;
  o << "{\"lwmpi_profile\":1,\"nranks\":" << nranks_ << ",\"nvcis\":" << nvcis_
    << ",\"netmod\":\"" << netmod << "\",\"phases\":[";
  for (int ph = 0; ph < np; ++ph) {
    o << (ph == 0 ? "" : ",") << '"' << jesc(phase_name(ph)) << '"';
  }
  o << "],\"phase_overflows\":" << phase_overflows() << ",\"ranks\":[";
  for (int r = 0; r < nranks_; ++r) {
    const RankProf& rp = rank(r);
    o << (r == 0 ? "" : ",") << "{\"rank\":" << r
      << ",\"pop_warnings\":" << rp.pop_warnings() << ",\"phases\":[";
    bool first_ph = true;
    for (int ph = 0; ph < np; ++ph) {
      // Emit only phases this rank recorded under (slab allocated).
      bool any = false;
      for (std::size_t s = 0; s < kNumCallsites && !any; ++s) {
        any = rp.site_count(ph, static_cast<Callsite>(s)) != 0;
      }
      if (!any) continue;
      o << (first_ph ? "" : ",") << "{\"phase\":\"" << jesc(phase_name(ph))
        << "\",\"time_ns\":" << rp.phase_time_ns(ph) << ",\"callsites\":[";
      first_ph = false;
      bool first_cs = true;
      for (std::size_t s = 0; s < kNumCallsites; ++s) {
        const auto site = static_cast<Callsite>(s);
        for (int v = 0; v < nvcis_; ++v) {
          const CallCell* c = rp.peek(ph, site, v);
          if (c == nullptr || c->count.load(std::memory_order_relaxed) == 0) continue;
          o << (first_cs ? "" : ",") << "{\"site\":\"" << to_string(site)
            << "\",\"vci\":" << v << ",\"count\":" << c->count.load(std::memory_order_relaxed)
            << ",\"bytes\":" << c->bytes.load(std::memory_order_relaxed)
            << ",\"time_ns\":" << c->time_ns.load(std::memory_order_relaxed) << ",\"cost\":{";
          first_cs = false;
          for (std::size_t g = 0; g < cost::kNumGroups; ++g) {
            o << (g == 0 ? "" : ",") << '"' << cost::to_string(static_cast<cost::Group>(g))
              << "\":" << c->instr[g].load(std::memory_order_relaxed);
          }
          o << "}}";
        }
      }
      o << "]}";
    }
    o << "]}";
  }
  o << "],\"matrix\":[";
  bool first_cell = true;
  for (Rank s = 0; s < nranks_; ++s) {
    for (Rank d = 0; d < nranks_; ++d) {
      for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
        const auto cls = static_cast<MsgClass>(c);
        const std::uint64_t n = matrix_.count(s, d, cls);
        const std::uint64_t b = matrix_.bytes(s, d, cls);
        if (n == 0 && b == 0) continue;
        o << (first_cell ? "" : ",") << "{\"src\":" << s << ",\"dst\":" << d
          << ",\"class\":\"" << to_string(cls) << "\",\"count\":" << n << ",\"bytes\":" << b
          << '}';
        first_cell = false;
      }
    }
  }
  o << "]}";
  return o.str();
}

void Profiler::write_artifact(const std::string& path, std::string_view netmod) const {
  if (path.empty()) return;
  std::ofstream f(path, std::ios::trunc);
  if (!f) return;
  f << artifact_json(netmod) << '\n';
}

}  // namespace lwmpi::obs
