#include "obs/pvar.hpp"

#include <span>

#include "core/engine.hpp"
#include "net/fabric.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

const char* to_string(PvarClass c) noexcept {
  switch (c) {
    case PvarClass::Counter: return "counter";
    case PvarClass::Level: return "level";
    case PvarClass::Highwatermark: return "highwatermark";
  }
  return "?";
}

namespace {

using ReadFn = std::uint64_t (*)(Engine&, int vci);

struct Entry {
  PvarInfo info;
  ReadFn read;  // one channel for Vci-bound entries; vci ignored otherwise
};

template <VciCtr C>
std::uint64_t read_vci_ctr(Engine& e, int vci) {
  return e.vci_counters(vci).get(C);
}
template <EngCtr C>
std::uint64_t read_eng_ctr(Engine& e, int) {
  return e.engine_counters().get(C);
}

constexpr PvarInfo vci_counter(std::string_view name, std::string_view desc) {
  return {name, desc, PvarClass::Counter, PvarBind::Vci};
}

const Entry kRegistry[] = {
    {vci_counter("vci_sends_eager", "sends issued on the eager path"),
     &read_vci_ctr<VciCtr::SendEager>},
    {vci_counter("vci_sends_rdv", "sends issued on the rendezvous path"),
     &read_vci_ctr<VciCtr::SendRdv>},
    {vci_counter("vci_sends_noreq", "_NOREQ sends (counter-completed)"),
     &read_vci_ctr<VciCtr::SendNoreq>},
    {vci_counter("vci_sends_queued", "packets staged in the orig-device send queue"),
     &read_vci_ctr<VciCtr::SendQueued>},
    {vci_counter("vci_recvs_posted", "receives posted to the matcher"),
     &read_vci_ctr<VciCtr::RecvPosted>},
    {{"vci_unexpected_depth", "current unexpected-queue depth", PvarClass::Level,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::UnexpectedDepth>},
    {{"vci_unexpected_hwm", "unexpected-queue high-water mark", PvarClass::Highwatermark,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::UnexpectedHwm>},
    {vci_counter("vci_posted_matches", "arrivals that matched a posted receive"),
     &read_vci_ctr<VciCtr::PostedMatch>},
    {vci_counter("vci_posted_misses", "arrivals retained on the unexpected queue"),
     &read_vci_ctr<VciCtr::PostedMiss>},
    {vci_counter("vci_gate_contended", "VciGate acquisitions that missed try_lock"),
     &read_vci_ctr<VciCtr::GateContended>},
    {vci_counter("vci_busy_instr", "modeled instructions executed on the channel"),
     +[](Engine& e, int vci) { return e.vci_busy_instr(vci); }},
    {vci_counter("rma_ops", "RMA data operations issued on the channel"),
     &read_vci_ctr<VciCtr::RmaOp>},
    {vci_counter("rma_flushes", "RMA flush/fence synchronizations on the channel"),
     &read_vci_ctr<VciCtr::RmaFlush>},
    {{"progress_calls_idle", "progress() calls resolved by the lock-free idle path",
      PvarClass::Counter, PvarBind::Engine},
     &read_eng_ctr<EngCtr::ProgressIdle>},
    {{"progress_calls_swept", "progress() calls that swept the VCI poll set",
      PvarClass::Counter, PvarBind::Engine},
     &read_eng_ctr<EngCtr::ProgressSwept>},
    {vci_counter("fabric_injected", "packets injected into this rank's fabric lane"),
     +[](Engine& e, int vci) { return e.world().fabric().injected(e.world_rank(), vci); }},
    {vci_counter("fabric_delivered", "packets delivered from this rank's fabric lane"),
     +[](Engine& e, int vci) { return e.world().fabric().delivered(e.world_rank(), vci); }},
    {{"requests_live", "request-pool slots currently allocated", PvarClass::Level,
      PvarBind::Engine},
     +[](Engine& e, int) { return static_cast<std::uint64_t>(e.live_requests()); }},
    {{"sends_issued", "total sends issued by this rank", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) { return e.sends_issued(); }},
    // Process-global (the trace-ring registry is shared by every world in the
    // process): events overwritten before collection, so exported Perfetto
    // timelines can be flagged as incomplete.
    {{"trace_events_dropped", "trace-ring events overwritten before collection",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine&, int) { return trace::dropped_all(); }},
};

constexpr int kNumPvars = static_cast<int>(std::size(kRegistry));

// Absolute (pre-baseline) value, summed over channels for Vci-bound entries.
std::uint64_t raw_read(Engine& e, int index, int vci) {
  const Entry& ent = kRegistry[index];
  if (ent.info.bind == PvarBind::Engine) return ent.read(e, 0);
  if (vci >= 0) return ent.read(e, vci);
  std::uint64_t sum = 0;
  for (int v = 0; v < e.num_vcis(); ++v) sum += ent.read(e, v);
  return sum;
}

bool bad_index(int index) noexcept { return index < 0 || index >= kNumPvars; }

}  // namespace

int LWMPI_T_pvar_num() noexcept { return kNumPvars; }

Err LWMPI_T_pvar_get_info(int index, PvarInfo* info) noexcept {
  if (info == nullptr) return Err::Arg;
  if (bad_index(index)) return Err::Arg;
  *info = kRegistry[index].info;
  return Err::Success;
}

int LWMPI_T_pvar_index(std::string_view name) noexcept {
  for (int i = 0; i < kNumPvars; ++i) {
    if (kRegistry[i].info.name == name) return i;
  }
  return -1;
}

Err LWMPI_T_pvar_session_create(Engine& e, PvarSession* s) {
  if (s == nullptr) return Err::Arg;
  s->engine_ = &e;
  s->baseline_.assign(static_cast<std::size_t>(kNumPvars), 0);
  return Err::Success;
}

Err LWMPI_T_pvar_session_free(PvarSession* s) {
  if (s == nullptr || s->engine_ == nullptr) return Err::Arg;
  s->engine_ = nullptr;
  s->baseline_.clear();
  return Err::Success;
}

Err LWMPI_T_pvar_start(PvarSession& s, int index) {
  if (!s.valid() || bad_index(index)) return Err::Arg;
  if (kRegistry[index].info.klass == PvarClass::Counter) {
    s.baseline_[static_cast<std::size_t>(index)] = raw_read(*s.engine_, index, -1);
  }
  return Err::Success;
}

Err LWMPI_T_pvar_read(PvarSession& s, int index, std::uint64_t* value) {
  if (value == nullptr || !s.valid() || bad_index(index)) return Err::Arg;
  std::uint64_t v = raw_read(*s.engine_, index, -1);
  if (kRegistry[index].info.klass == PvarClass::Counter) {
    v -= s.baseline_[static_cast<std::size_t>(index)];
  }
  *value = v;
  return Err::Success;
}

Err LWMPI_T_pvar_read_vci(PvarSession& s, int index, int vci, std::uint64_t* value) {
  if (value == nullptr || !s.valid() || bad_index(index)) return Err::Arg;
  if (vci >= s.engine_->num_vcis()) return Err::Arg;
  if (vci < 0) return LWMPI_T_pvar_read(s, index, value);
  *value = raw_read(*s.engine_, index, vci);
  return Err::Success;
}

Err LWMPI_T_pvar_reset(PvarSession& s, int index) { return LWMPI_T_pvar_start(s, index); }

}  // namespace lwmpi::obs
