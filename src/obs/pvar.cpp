#include "obs/pvar.hpp"

#include <span>

#include "core/engine.hpp"
#include "net/fabric.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

const char* to_string(PvarClass c) noexcept {
  switch (c) {
    case PvarClass::Counter: return "counter";
    case PvarClass::Level: return "level";
    case PvarClass::Highwatermark: return "highwatermark";
  }
  return "?";
}

namespace {

using ReadFn = std::uint64_t (*)(Engine&, int vci);

struct Entry {
  PvarInfo info;
  ReadFn read;  // one channel for Vci-bound entries; vci ignored otherwise
};

template <VciCtr C>
std::uint64_t read_vci_ctr(Engine& e, int vci) {
  return e.vci_counters(vci).get(C);
}
template <EngCtr C>
std::uint64_t read_eng_ctr(Engine& e, int) {
  return e.engine_counters().get(C);
}

constexpr PvarInfo vci_counter(std::string_view name, std::string_view desc) {
  return {name, desc, PvarClass::Counter, PvarBind::Vci};
}

// Latency-histogram readers: fold one path's histogram across the engine's
// channels, then extract a statistic. Percentiles/max are Level-class (an
// instantaneous property of the distribution); counts are Counter-class so
// sessions can baseline them like any other event count.
LatSnapshot merged_lat(Engine& e, LatPath p) {
  LatSnapshot s;
  for (int v = 0; v < e.num_vcis(); ++v) s.merge(e.vci_latency(v).of(p));
  return s;
}
template <LatPath P>
std::uint64_t read_lat_p50(Engine& e, int) {
  return merged_lat(e, P).percentile(0.50);
}
template <LatPath P>
std::uint64_t read_lat_p99(Engine& e, int) {
  return merged_lat(e, P).percentile(0.99);
}
template <LatPath P>
std::uint64_t read_lat_max(Engine& e, int) {
  return merged_lat(e, P).max_ns;
}
template <LatPath P>
std::uint64_t read_lat_count(Engine& e, int) {
  return merged_lat(e, P).count;
}

constexpr PvarInfo lat_level(std::string_view name, std::string_view desc) {
  return {name, desc, PvarClass::Level, PvarBind::Engine};
}

// Wait-state histogram readers (obs/causal.hpp): fold one classification's
// histogram across the engine's channels, same shape as the lat_* readers.
LatSnapshot merged_waits(Engine& e, Wait w) {
  LatSnapshot s;
  for (int v = 0; v < e.num_vcis(); ++v) s.merge(e.vci_waits(v).of(w));
  return s;
}
template <Wait W>
std::uint64_t read_wait_count(Engine& e, int) {
  return merged_waits(e, W).count;
}
template <Wait W>
std::uint64_t read_wait_p99(Engine& e, int) {
  return merged_waits(e, W).percentile(0.99);
}
template <Wait W>
std::uint64_t read_wait_max(Engine& e, int) {
  return merged_waits(e, W).max_ns;
}

const Entry kRegistry[] = {
    {vci_counter("vci_sends_eager", "sends issued on the eager path"),
     &read_vci_ctr<VciCtr::SendEager>},
    {vci_counter("vci_sends_rdv", "sends issued on the rendezvous path"),
     &read_vci_ctr<VciCtr::SendRdv>},
    {vci_counter("vci_sends_noreq", "_NOREQ sends (counter-completed)"),
     &read_vci_ctr<VciCtr::SendNoreq>},
    {vci_counter("vci_sends_queued", "packets staged in the orig-device send queue"),
     &read_vci_ctr<VciCtr::SendQueued>},
    {vci_counter("vci_recvs_posted", "receives posted to the matcher"),
     &read_vci_ctr<VciCtr::RecvPosted>},
    {{"vci_posted_depth", "current posted-receive-queue depth", PvarClass::Level,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::PostedDepth>},
    {{"vci_posted_hwm", "posted-receive-queue high-water mark", PvarClass::Highwatermark,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::PostedHwm>},
    {{"vci_unexpected_depth", "current unexpected-queue depth", PvarClass::Level,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::UnexpectedDepth>},
    {{"vci_unexpected_hwm", "unexpected-queue high-water mark", PvarClass::Highwatermark,
      PvarBind::Vci},
     &read_vci_ctr<VciCtr::UnexpectedHwm>},
    {vci_counter("vci_posted_matches", "arrivals that matched a posted receive"),
     &read_vci_ctr<VciCtr::PostedMatch>},
    {vci_counter("vci_posted_misses", "arrivals retained on the unexpected queue"),
     &read_vci_ctr<VciCtr::PostedMiss>},
    {vci_counter("vci_gate_contended", "VciGate acquisitions that missed try_lock"),
     &read_vci_ctr<VciCtr::GateContended>},
    {vci_counter("vci_busy_instr", "modeled instructions executed on the channel"),
     +[](Engine& e, int vci) { return e.vci_busy_instr(vci); }},
    {vci_counter("rma_ops", "RMA data operations issued on the channel"),
     &read_vci_ctr<VciCtr::RmaOp>},
    {vci_counter("rma_flushes", "RMA flush/fence synchronizations on the channel"),
     &read_vci_ctr<VciCtr::RmaFlush>},
    {{"progress_calls_idle", "progress() calls resolved by the lock-free idle path",
      PvarClass::Counter, PvarBind::Engine},
     &read_eng_ctr<EngCtr::ProgressIdle>},
    {{"progress_calls_swept", "progress() calls that swept the VCI poll set",
      PvarClass::Counter, PvarBind::Engine},
     &read_eng_ctr<EngCtr::ProgressSwept>},
    {vci_counter("fabric_injected", "packets injected into this rank's fabric lane"),
     +[](Engine& e, int vci) { return e.world().fabric().injected(e.world_rank(), vci); }},
    {vci_counter("fabric_delivered", "packets delivered from this rank's fabric lane"),
     +[](Engine& e, int vci) { return e.world().fabric().delivered(e.world_rank(), vci); }},
    // Per-lane payload byte counters (telemetry bytes/sec rates derive from
    // deltas of these).
    {vci_counter("fabric_injected_bytes", "payload bytes injected toward this rank's lane"),
     +[](Engine& e, int vci) {
       return e.world().fabric().injected_bytes(e.world_rank(), vci);
     }},
    {vci_counter("fabric_delivered_bytes", "payload bytes delivered from this rank's lane"),
     +[](Engine& e, int vci) {
       return e.world().fabric().delivered_bytes(e.world_rank(), vci);
     }},
    // Fabric-wide blackhole drop count (infinitely-fast-network methodology).
    // The counter is shared by every rank of the world, so per-rank reports
    // repeat the same value; fig5/fig6 runs read it from rank 0.
    {{"fabric_dropped", "packets dropped at the injection boundary (blackhole)",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) { return e.world().fabric().dropped(); }},
    // rdma-netmod statistics: all read 0 on backends without the mechanism.
    {{"rdma_reg_cache_hits", "buffer registrations resolved from the cache",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RegCacheHit, e.world_rank());
     }},
    {{"rdma_reg_cache_misses", "buffer registrations that paid the pin cost",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RegCacheMiss, e.world_rank());
     }},
    {{"rdma_reg_cache_evictions", "LRU registrations unpinned to make room",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RegCacheEviction, e.world_rank());
     }},
    {{"rdma_ring_occupancy_hwm", "eager receive-ring occupancy high-water mark",
      PvarClass::Highwatermark, PvarBind::Vci},
     +[](Engine& e, int vci) {
       return e.world().fabric().net_stat(net::NetStat::RingOccupancyHwm, e.world_rank(),
                                          vci);
     }},
    {{"rdma_ring_stalls", "injections that waited for an eager-ring credit",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RingStall, e.world_rank());
     }},
    {{"rdma_zero_copy_writes", "one-sided zero-copy transfers issued by this rank",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::ZeroCopyWrite, e.world_rank());
     }},
    {{"rdma_zero_copy_bytes", "payload bytes moved by zero-copy rdma_write",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::ZeroCopyBytes, e.world_rank());
     }},
    {{"requests_live", "request-pool slots currently allocated", PvarClass::Level,
      PvarBind::Engine},
     +[](Engine& e, int) { return static_cast<std::uint64_t>(e.live_requests()); }},
    {{"sends_issued", "total sends issued by this rank", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) { return e.sends_issued(); }},
    // Process-global (the trace-ring registry is shared by every world in the
    // process): events overwritten before collection, so exported Perfetto
    // timelines can be flagged as incomplete.
    {{"trace_events_dropped", "trace-ring events overwritten before collection",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine&, int) { return trace::dropped_all(); }},
    // Message-lifetime latency distributions (obs/histogram.hpp), merged over
    // the engine's channels.
    {lat_level("lat_send_eager_p50_ns", "eager send lifetime p50 (ns)"),
     &read_lat_p50<LatPath::SendEager>},
    {lat_level("lat_send_eager_p99_ns", "eager send lifetime p99 (ns)"),
     &read_lat_p99<LatPath::SendEager>},
    {lat_level("lat_send_eager_max_ns", "eager send lifetime max (ns)"),
     &read_lat_max<LatPath::SendEager>},
    {lat_level("lat_send_rdv_p50_ns", "rendezvous send lifetime p50 (ns)"),
     &read_lat_p50<LatPath::SendRdv>},
    {lat_level("lat_send_rdv_p99_ns", "rendezvous send lifetime p99 (ns)"),
     &read_lat_p99<LatPath::SendRdv>},
    {lat_level("lat_send_rdv_max_ns", "rendezvous send lifetime max (ns)"),
     &read_lat_max<LatPath::SendRdv>},
    {lat_level("lat_recv_eager_p50_ns", "eager receive lifetime p50 (ns)"),
     &read_lat_p50<LatPath::RecvEager>},
    {lat_level("lat_recv_eager_p99_ns", "eager receive lifetime p99 (ns)"),
     &read_lat_p99<LatPath::RecvEager>},
    {lat_level("lat_recv_eager_max_ns", "eager receive lifetime max (ns)"),
     &read_lat_max<LatPath::RecvEager>},
    {lat_level("lat_recv_rdv_p50_ns", "rendezvous receive lifetime p50 (ns)"),
     &read_lat_p50<LatPath::RecvRdv>},
    {lat_level("lat_recv_rdv_p99_ns", "rendezvous receive lifetime p99 (ns)"),
     &read_lat_p99<LatPath::RecvRdv>},
    {lat_level("lat_recv_rdv_max_ns", "rendezvous receive lifetime max (ns)"),
     &read_lat_max<LatPath::RecvRdv>},
    {{"lat_send_eager_count", "eager send lifetimes recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::SendEager>},
    {{"lat_send_rdv_count", "rendezvous send lifetimes recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::SendRdv>},
    {{"lat_recv_eager_count", "eager receive lifetimes recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::RecvEager>},
    {{"lat_recv_rdv_count", "rendezvous receive lifetimes recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::RecvRdv>},
    {{"lat_unexpected_wait_count", "unexpected-queue waits recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::UnexpectedWait>},
    {{"lat_send_queue_wait_count", "send-queue residencies recorded", PvarClass::Counter,
      PvarBind::Engine},
     &read_lat_count<LatPath::SendQueueWait>},
    // Causal wait-state distributions (obs/causal.hpp): every matched
    // message's wait interval, classified by its dominant cause and merged
    // over the engine's channels.
    {{"wait_late_sender_count", "matches classified late-sender", PvarClass::Counter,
      PvarBind::Engine},
     &read_wait_count<Wait::LateSender>},
    {lat_level("wait_late_sender_p99_ns", "late-sender wait p99 (ns)"),
     &read_wait_p99<Wait::LateSender>},
    {lat_level("wait_late_sender_max_ns", "late-sender wait max (ns)"),
     &read_wait_max<Wait::LateSender>},
    {{"wait_late_receiver_count", "matches classified late-receiver", PvarClass::Counter,
      PvarBind::Engine},
     &read_wait_count<Wait::LateReceiver>},
    {lat_level("wait_late_receiver_p99_ns", "late-receiver wait p99 (ns)"),
     &read_wait_p99<Wait::LateReceiver>},
    {lat_level("wait_late_receiver_max_ns", "late-receiver wait max (ns)"),
     &read_wait_max<Wait::LateReceiver>},
    {{"wait_progress_starved_count", "matches classified progress-starved",
      PvarClass::Counter, PvarBind::Engine},
     &read_wait_count<Wait::ProgressStarved>},
    {lat_level("wait_progress_starved_p99_ns", "progress-starved wait p99 (ns)"),
     &read_wait_p99<Wait::ProgressStarved>},
    {lat_level("wait_progress_starved_max_ns", "progress-starved wait max (ns)"),
     &read_wait_max<Wait::ProgressStarved>},
    {{"wait_credit_stalled_count", "matches classified credit-stalled",
      PvarClass::Counter, PvarBind::Engine},
     &read_wait_count<Wait::CreditStalled>},
    {lat_level("wait_credit_stalled_p99_ns", "credit-stalled wait p99 (ns)"),
     &read_wait_p99<Wait::CreditStalled>},
    {lat_level("wait_credit_stalled_max_ns", "credit-stalled wait max (ns)"),
     &read_wait_max<Wait::CreditStalled>},
    {{"wait_reg_cache_miss_count", "zcopy registrations that paid the pin cost",
      PvarClass::Counter, PvarBind::Engine},
     &read_wait_count<Wait::RegCacheMiss>},
    {lat_level("wait_reg_cache_miss_p99_ns", "reg-cache-miss wait p99 (ns)"),
     &read_wait_p99<Wait::RegCacheMiss>},
    {lat_level("wait_reg_cache_miss_max_ns", "reg-cache-miss wait max (ns)"),
     &read_wait_max<Wait::RegCacheMiss>},
    // rdma credit state (satellite of the causal tier): live ring credits and
    // registration-cache size, so hangdump can show credit exhaustion.
    {{"rdma_ring_credits", "free eager-ring credits (scarcest lane)", PvarClass::Level,
      PvarBind::Vci},
     +[](Engine& e, int vci) {
       return e.world().fabric().net_stat(net::NetStat::RingCredits, e.world_rank(), vci);
     }},
    {{"rdma_ring_stall_ns", "total ns injections busy-waited for a credit",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RingStallNs, e.world_rank());
     }},
    {{"rdma_reg_cache_size", "current registration-cache entry count", PvarClass::Level,
      PvarBind::Engine},
     +[](Engine& e, int) {
       return e.world().fabric().net_stat(net::NetStat::RegCacheSize, e.world_rank());
     }},
    // Aggregate-profiler pvars (obs/profiler.hpp): communication-matrix row /
    // column sums for this rank plus phase and misuse state. All read 0 when
    // profiling is off. prof_tx_bytes mirrors the fabric_injected_bytes sum
    // by construction (the profcheck invariant).
    {{"prof_tx_bytes", "packet payload bytes this rank injected (matrix row sum)",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       return p == nullptr ? 0 : p->matrix().tx_bytes(e.world_rank());
     }},
    {{"prof_rx_bytes", "packet payload bytes addressed to this rank (matrix column sum)",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       return p == nullptr ? 0 : p->matrix().rx_bytes(e.world_rank());
     }},
    {{"prof_tx_msgs", "packets this rank injected (matrix row sum)", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       return p == nullptr ? 0 : p->matrix().tx_msgs(e.world_rank());
     }},
    {{"prof_rx_msgs", "packets addressed to this rank (matrix column sum)",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       return p == nullptr ? 0 : p->matrix().rx_msgs(e.world_rank());
     }},
    {{"prof_zcopy_tx_bytes", "zero-copy rdma_write bytes this rank originated",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       if (p == nullptr) return 0;
       const Rank r = e.world_rank();
       return p->matrix().tx_bytes(r, /*include_zcopy=*/true) - p->matrix().tx_bytes(r);
     }},
    {{"prof_phase_depth", "current profiler phase-stack depth", PvarClass::Level,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankProf* rp = e.prof();
       return rp == nullptr ? 0 : static_cast<std::uint64_t>(rp->phase_depth());
     }},
    {{"prof_pop_warnings", "phase pops on an empty stack (profiler misuse)",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankProf* rp = e.prof();
       return rp == nullptr ? 0 : rp->pop_warnings();
     }},
    {{"prof_phases", "distinct phase names interned by the profiler", PvarClass::Level,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const Profiler* p = e.world().profiler();
       return p == nullptr ? 0 : static_cast<std::uint64_t>(p->num_phases());
     }},
    // Flight-recorder pvars (obs/recorder.hpp). All read 0 when recording is
    // off (WorldOptions::record).
    {{"rec_ops_captured", "surface calls captured by the flight recorder",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankRec* r = e.rec();
       return r == nullptr ? 0 : r->total_ops();
     }},
    {{"rec_ops_dropped", "recorded ops overwritten in the ring before flush",
      PvarClass::Counter, PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankRec* r = e.rec();
       return r == nullptr ? 0 : r->dropped();
     }},
    {{"rec_ops_sampled", "recorded ops carrying TSC timing anchors", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankRec* r = e.rec();
       return r == nullptr ? 0 : r->anchor_count();
     }},
    {{"rec_bytes_flushed", "trace-bundle bytes written for this rank", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankRec* r = e.rec();
       return r == nullptr ? 0 : r->flushed_bytes();
     }},
    {{"rec_flush_ns", "total ns spent flushing this rank's trace", PvarClass::Counter,
      PvarBind::Engine},
     +[](Engine& e, int) -> std::uint64_t {
       const RankRec* r = e.rec();
       return r == nullptr ? 0 : r->flush_ns();
     }},
};

constexpr int kNumPvars = static_cast<int>(std::size(kRegistry));

// Absolute (pre-baseline) value, summed over channels for Vci-bound entries.
std::uint64_t raw_read(Engine& e, int index, int vci) {
  const Entry& ent = kRegistry[index];
  if (ent.info.bind == PvarBind::Engine) return ent.read(e, 0);
  if (vci >= 0) return ent.read(e, vci);
  std::uint64_t sum = 0;
  for (int v = 0; v < e.num_vcis(); ++v) sum += ent.read(e, v);
  return sum;
}

bool bad_index(int index) noexcept { return index < 0 || index >= kNumPvars; }

}  // namespace

int LWMPI_T_pvar_num() noexcept { return kNumPvars; }

Err LWMPI_T_pvar_get_info(int index, PvarInfo* info) noexcept {
  if (info == nullptr) return Err::Arg;
  if (bad_index(index)) return Err::Arg;
  *info = kRegistry[index].info;
  return Err::Success;
}

int LWMPI_T_pvar_index(std::string_view name) noexcept {
  for (int i = 0; i < kNumPvars; ++i) {
    if (kRegistry[i].info.name == name) return i;
  }
  return -1;
}

Err LWMPI_T_pvar_session_create(Engine& e, PvarSession* s) {
  if (s == nullptr) return Err::Arg;
  s->engine_ = &e;
  s->baseline_.assign(static_cast<std::size_t>(kNumPvars), 0);
  return Err::Success;
}

Err LWMPI_T_pvar_session_free(PvarSession* s) {
  if (s == nullptr || s->engine_ == nullptr) return Err::Arg;
  s->engine_ = nullptr;
  s->baseline_.clear();
  return Err::Success;
}

Err LWMPI_T_pvar_start(PvarSession& s, int index) {
  if (!s.valid() || bad_index(index)) return Err::Arg;
  if (kRegistry[index].info.klass == PvarClass::Counter) {
    s.baseline_[static_cast<std::size_t>(index)] = raw_read(*s.engine_, index, -1);
  }
  return Err::Success;
}

Err LWMPI_T_pvar_read(PvarSession& s, int index, std::uint64_t* value) {
  if (value == nullptr || !s.valid() || bad_index(index)) return Err::Arg;
  std::uint64_t v = raw_read(*s.engine_, index, -1);
  if (kRegistry[index].info.klass == PvarClass::Counter) {
    v -= s.baseline_[static_cast<std::size_t>(index)];
  }
  *value = v;
  return Err::Success;
}

Err LWMPI_T_pvar_read_vci(PvarSession& s, int index, int vci, std::uint64_t* value) {
  if (value == nullptr || !s.valid() || bad_index(index)) return Err::Arg;
  if (vci >= s.engine_->num_vcis()) return Err::Arg;
  if (vci < 0) return LWMPI_T_pvar_read(s, index, value);
  *value = raw_read(*s.engine_, index, vci);
  return Err::Success;
}

Err LWMPI_T_pvar_reset(PvarSession& s, int index) { return LWMPI_T_pvar_start(s, index); }

}  // namespace lwmpi::obs
