// Live queue introspection: MPIR-debugger-style snapshots of a rank's
// communication state.
//
// MPICH exposes its posted/unexpected queues to debuggers through the MPIR
// message-queue interface; the paper's operability argument (and the tool
// interfaces MPI_T standardizes in MPI-3.1 section 14) is that a runtime you
// cannot look inside cannot be diagnosed. This header is lwmpi's equivalent:
// Engine::snapshot() walks every VCI's posted-receive queue, unexpected
// queue, software send queue, and RMA epoch state under the channel locks and
// returns a plain-data picture -- per entry: communicator, tag, source, size,
// and age. The watchdog (obs/watchdog.hpp) embeds these snapshots in its hang
// diagnosis; tools/hangdump pretty-prints them.
//
// Snapshots are diagnostic, not transactional: each VCI is captured
// atomically (under its lock), but the rank keeps running between channels,
// so cross-VCI state may be skewed by in-flight traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::obs {

// One posted-receive or unexpected-message entry.
struct QueueEntrySnap {
  std::uint32_t ctx = 0;        // matcher context id
  Comm comm = kCommNull;        // reverse-mapped communicator (kCommNull if freed)
  Rank src = kAnySource;        // posted: requested source (may be kAnySource)
                                // unexpected: sender's comm rank
  Tag tag = kAnyTag;            // may be kAnyTag for posted entries
  std::uint64_t bytes = 0;      // posted: receive capacity; unexpected: payload
  std::uint64_t age_ns = 0;     // time since post/arrival (0 if unstamped)
  std::uint32_t req = 0;        // posted: owning request slot index (raw)
  bool arrival_order = false;   // _NOMATCH entry (context-only matching)
};

// One orig-device software send-queue entry.
struct SendQueueSnap {
  Rank dst_world = 0;
  Tag tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t age_ns = 0;
};

// One channel's queues.
struct VciSnapshot {
  int vci = 0;
  std::vector<QueueEntrySnap> posted;
  std::vector<QueueEntrySnap> unexpected;
  std::vector<SendQueueSnap> send_queue;
};

// One RMA window's synchronization state.
struct WinSnapshot {
  std::uint32_t win_id = 0;
  const char* epoch = "none";       // none/fence/lock/lock_all/pscw
  std::uint64_t outstanding_acks = 0;
  std::size_t pending_lock_ops = 0; // ops deferred until a lock grant
};

// The oldest incomplete request on the rank -- the first thing to look at in
// a hang report.
struct PendingReqSnap {
  bool valid = false;
  const char* kind = "none";  // send_eager/send_rdv/recv/recv_rdv
  Comm comm = kCommNull;
  Rank peer = kProcNull;      // sends: destination world rank; recvs: posted source
  Tag tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t age_ns = 0;
};

// rdma-backend credit and registration-cache state. `valid` is false on
// backends without the mechanism (mailbox), and the renderers skip the block,
// so snapshots stay backend-agnostic.
struct RdmaLaneSnap {
  int vci = 0;
  std::uint64_t credits_free = 0;   // unconsumed eager-ring slots
  std::uint64_t ring_depth = 0;     // configured ring capacity
  std::uint64_t occupancy_hwm = 0;  // lifetime occupancy high-water mark
};

struct RdmaSnapshot {
  bool valid = false;
  std::vector<RdmaLaneSnap> lanes;
  std::uint64_t reg_cache_size = 0;  // current LRU entries
  std::uint64_t reg_hits = 0;
  std::uint64_t reg_misses = 0;
  std::uint64_t reg_evictions = 0;
  std::uint64_t ring_stalls = 0;    // injections that waited for a credit
  std::uint64_t ring_stall_ns = 0;  // total ns spent in those waits
};

// Everything Engine::snapshot() captures for one rank.
struct RankSnapshot {
  Rank rank = 0;
  std::size_t live_requests = 0;
  const char* blocking_call = nullptr;  // nullptr when not in a blocking MPI call
  std::uint64_t blocked_ns = 0;         // age of the blocking call (0 if none)
  std::string phase;                    // profiler's current phase ("" = prof off)
  PendingReqSnap oldest;
  std::vector<VciSnapshot> vcis;
  std::vector<WinSnapshot> windows;
  RdmaSnapshot rdma;
};

// Human-readable multi-line dump ("rank 1: blocked in Wait for 1.2s ...").
std::string render_text(const RankSnapshot& s);

// JSON object (no trailing newline), same shape stats_report uses.
std::string render_json(const RankSnapshot& s);

}  // namespace lwmpi::obs
