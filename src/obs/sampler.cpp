// Continuous telemetry sampler (obs/sampler.hpp).
//
// Collection discipline: every value the tick reads is a relaxed atomic
// (CounterBlock, LatencyHist buckets, fabric/netmod counters) or an engine
// accessor documented lock-free, so a tick can run concurrently with hot
// rank threads without taking any engine lock. Derivation is subtraction
// against the previous tick's cumulative baseline; counter deltas saturate at
// zero so the documented lossy counter races can never produce a wrapped
// rate.
#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/engine.hpp"
#include "obs/counters.hpp"
#include "obs/cvar.hpp"
#include "obs/profiler.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

namespace {

// The SLO rule table. Each rule pairs a stable name with the runtime-scope
// cvar holding its threshold; a threshold <= 0 disables the rule. The value
// extractor lives in evaluate_slo (a switch on the index), so adding a rule
// is one table row plus one case.
struct SloRule {
  const char* name;
  Cv threshold;
};
constexpr SloRule kSloRules[] = {
    {"credit_stall_pct", Cv::SloCreditStallPct},
    {"unexpected_depth", Cv::SloUnexpectedDepth},
    {"unexpected_growth", Cv::SloUnexpectedGrowth},
    {"progress_idle_pct", Cv::SloProgressIdlePct},
};
constexpr int kNumSloRules = static_cast<int>(sizeof(kSloRules) / sizeof(kSloRules[0]));

std::uint64_t sat_sub(std::uint64_t now, std::uint64_t was) noexcept {
  return now >= was ? now - was : 0;
}

// JSON/Prometheus-safe double rendering: %.6g never emits inf/nan here
// because every rate divides by a clamped-positive interval.
void put_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

const char* wait_name(std::size_t idx) noexcept {
  return to_string(static_cast<Wait>(idx + 1));  // skip Wait::None
}

}  // namespace

std::string render_json(const RankSample& s) {
  std::ostringstream o;
  o << "{\"rank\":" << s.rank << ",\"seq\":" << s.seq << ",\"t_ns\":" << s.t_ns
    << ",\"dt_ns\":" << s.dt_ns << ",\"interval_ns\":" << s.interval_ns
    << ",\"sends_per_s\":";
  put_double(o, s.sends_per_s);
  o << ",\"recvs_per_s\":";
  put_double(o, s.recvs_per_s);
  o << ",\"send_p99_ns\":" << s.send_p99_ns << ",\"recv_p99_ns\":" << s.recv_p99_ns
    << ",\"posted_depth\":" << s.posted_depth
    << ",\"unexpected_depth\":" << s.unexpected_depth
    << ",\"posted_growth\":" << s.posted_growth
    << ",\"unexpected_growth\":" << s.unexpected_growth << ",\"credit_stall_pct\":";
  put_double(o, s.credit_stall_pct);
  o << ",\"idle_pct\":";
  put_double(o, s.idle_pct);
  o << ",\"wait\":{";
  for (std::size_t i = 0; i < kNumWaitStates; ++i) {
    o << (i == 0 ? "" : ",") << '"' << wait_name(i) << "\":" << s.wait_delta[i];
  }
  o << "},\"lanes\":[";
  for (std::size_t v = 0; v < s.lanes.size(); ++v) {
    const LaneSample& l = s.lanes[v];
    o << (v == 0 ? "" : ",") << "{\"vci\":" << v << ",\"send_per_s\":";
    put_double(o, l.send_per_s);
    o << ",\"deliver_per_s\":";
    put_double(o, l.deliver_per_s);
    o << ",\"deliver_bytes_per_s\":";
    put_double(o, l.deliver_bytes_per_s);
    o << ",\"inject_bytes_per_s\":";
    put_double(o, l.inject_bytes_per_s);
    o << ",\"posted\":" << l.posted_depth << ",\"unexpected\":" << l.unexpected_depth
      << '}';
  }
  o << "],\"alerts\":[";
  for (std::size_t i = 0; i < s.alerts.size(); ++i) {
    const Alert& a = s.alerts[i];
    o << (i == 0 ? "" : ",") << "{\"rule\":\"" << a.rule << "\",\"value\":";
    put_double(o, a.value);
    o << ",\"threshold\":";
    put_double(o, a.threshold);
    o << '}';
  }
  o << "]}";
  return o.str();
}

Sampler::Sampler(World& world, SamplerOptions opts)
    : world_(world),
      opts_(std::move(opts)),
      ring_depth_(static_cast<std::size_t>(
          std::clamp<std::int64_t>(cvar(Cv::SamplerRingDepth), 2, 1 << 20))),
      trace_enabled_(world.options().build.trace) {
  const auto n = static_cast<std::size_t>(world_.nranks());
  raw_.resize(n);
  rings_.resize(n);
  // Baseline collection: the first tick's deltas are relative to "now", not
  // to process start, so a sampler attached mid-run reports honest rates.
  for (std::size_t r = 0; r < n; ++r) {
    collect(world_.engine(static_cast<Rank>(r)), &raw_[r]);
  }
  thread_ = std::thread([this] { run(); });
}

Sampler::~Sampler() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // Final interval: whatever happened since the last periodic tick still
  // lands in the time series before the teardown files are written.
  sample_now();
  if (!opts_.jsonl_path.empty()) {
    std::ofstream f(opts_.jsonl_path, std::ios::trunc);
    if (f) export_jsonl(f);
  }
  if (!opts_.prom_path.empty()) {
    std::ofstream f(opts_.prom_path, std::ios::trunc);
    if (f) f << prometheus();
  }
}

void Sampler::run() {
  // Same sliced-sleep pattern as the watchdog: destruction never waits out a
  // full interval, and the interval cvar is re-read on every pass so a
  // runtime write changes the cadence from the next tick on.
  constexpr std::uint64_t kSliceNs = 2'000'000;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::int64_t ms = std::max<std::int64_t>(1, cvar(Cv::SamplerIntervalMs));
    const auto interval_ns = static_cast<std::uint64_t>(ms) * 1'000'000;
    std::uint64_t slept = 0;
    while (slept < interval_ns && !stop_.load(std::memory_order_acquire)) {
      const std::uint64_t chunk = std::min(kSliceNs, interval_ns - slept);
      std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
      slept += chunk;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    tick();
  }
}

void Sampler::collect(Engine& e, RawRank* out) const {
  const int nv = e.num_vcis();
  const Rank r = e.world_rank();
  net::Fabric& fab = world_.fabric();
  const auto nvs = static_cast<std::size_t>(nv);
  out->lane_sends.assign(nvs, 0);
  out->lane_delivered.assign(nvs, 0);
  out->lane_deliver_bytes.assign(nvs, 0);
  out->lane_inject_bytes.assign(nvs, 0);
  out->sends = e.sends_issued();
  out->recvs = 0;
  out->posted_depth = 0;
  out->unexpected_depth = 0;
  out->waits.fill(0);
  out->send_lat = LatSnapshot{};
  out->recv_lat = LatSnapshot{};
  for (int v = 0; v < nv; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const VciCounters& c = e.vci_counters(v);
    out->lane_sends[vi] = c.get(VciCtr::SendEager) + c.get(VciCtr::SendRdv) +
                          c.get(VciCtr::SendNoreq) + c.get(VciCtr::SendQueued);
    out->lane_delivered[vi] = fab.delivered(r, v);
    out->lane_deliver_bytes[vi] = fab.delivered_bytes(r, v);
    out->lane_inject_bytes[vi] = fab.injected_bytes(r, v);
    out->recvs += c.get(VciCtr::RecvPosted);
    out->posted_depth += c.get(VciCtr::PostedDepth);
    out->unexpected_depth += c.get(VciCtr::UnexpectedDepth);
    const WaitBlock& w = e.vci_waits(v);
    for (std::size_t s = 0; s < kNumWaitStates; ++s) {
      out->waits[s] += w.of(static_cast<Wait>(s + 1)).snapshot().count;
    }
    const VciLatency& lat = e.vci_latency(v);
    out->send_lat.merge(lat.of(LatPath::SendEager));
    out->send_lat.merge(lat.of(LatPath::SendRdv));
    out->recv_lat.merge(lat.of(LatPath::RecvEager));
    out->recv_lat.merge(lat.of(LatPath::RecvRdv));
  }
  out->idle = e.engine_counters().get(EngCtr::ProgressIdle);
  out->swept = e.engine_counters().get(EngCtr::ProgressSwept);
  out->stall_ns = fab.net_stat(net::NetStat::RingStallNs, r);
  out->t_ns = lat_now_ns();
}

void Sampler::tick() {
  std::lock_guard<std::mutex> lk(mu_);
  const std::int64_t ms = std::max<std::int64_t>(1, cvar(Cv::SamplerIntervalMs));
  ++seq_;
  const int n = world_.nranks();
  for (int r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    RawRank now;
    collect(world_.engine(static_cast<Rank>(r)), &now);
    const RawRank& prev = raw_[ri];

    RankSample s;
    s.t_ns = now.t_ns;
    s.dt_ns = sat_sub(now.t_ns, prev.t_ns);
    s.interval_ns = static_cast<std::uint64_t>(ms) * 1'000'000;
    s.seq = seq_;
    s.rank = static_cast<Rank>(r);
    const double dt_s =
        s.dt_ns > 0 ? static_cast<double>(s.dt_ns) / 1e9 : 1e-9;

    s.lanes.resize(now.lane_sends.size());
    for (std::size_t v = 0; v < now.lane_sends.size(); ++v) {
      LaneSample& l = s.lanes[v];
      l.send_per_s =
          static_cast<double>(sat_sub(now.lane_sends[v], prev.lane_sends[v])) / dt_s;
      l.deliver_per_s =
          static_cast<double>(sat_sub(now.lane_delivered[v], prev.lane_delivered[v])) /
          dt_s;
      l.deliver_bytes_per_s =
          static_cast<double>(
              sat_sub(now.lane_deliver_bytes[v], prev.lane_deliver_bytes[v])) /
          dt_s;
      l.inject_bytes_per_s =
          static_cast<double>(
              sat_sub(now.lane_inject_bytes[v], prev.lane_inject_bytes[v])) /
          dt_s;
    }
    // Instantaneous per-lane depths (levels, not deltas).
    {
      Engine& e = world_.engine(static_cast<Rank>(r));
      for (std::size_t v = 0; v < s.lanes.size(); ++v) {
        const VciCounters& c = e.vci_counters(static_cast<int>(v));
        s.lanes[v].posted_depth = c.get(VciCtr::PostedDepth);
        s.lanes[v].unexpected_depth = c.get(VciCtr::UnexpectedDepth);
      }
    }

    s.sends_per_s = static_cast<double>(sat_sub(now.sends, prev.sends)) / dt_s;
    s.recvs_per_s = static_cast<double>(sat_sub(now.recvs, prev.recvs)) / dt_s;
    s.send_p99_ns = now.send_lat.delta(prev.send_lat).percentile(0.99);
    s.recv_p99_ns = now.recv_lat.delta(prev.recv_lat).percentile(0.99);
    s.posted_depth = now.posted_depth;
    s.unexpected_depth = now.unexpected_depth;
    s.posted_growth = static_cast<std::int64_t>(now.posted_depth) -
                      static_cast<std::int64_t>(prev.posted_depth);
    s.unexpected_growth = static_cast<std::int64_t>(now.unexpected_depth) -
                          static_cast<std::int64_t>(prev.unexpected_depth);
    const std::uint64_t stall = sat_sub(now.stall_ns, prev.stall_ns);
    s.credit_stall_pct =
        s.dt_ns > 0 ? 100.0 * static_cast<double>(stall) / static_cast<double>(s.dt_ns)
                    : 0.0;
    const std::uint64_t idle = sat_sub(now.idle, prev.idle);
    const std::uint64_t swept = sat_sub(now.swept, prev.swept);
    s.idle_pct = idle + swept > 0
                     ? 100.0 * static_cast<double>(idle) /
                           static_cast<double>(idle + swept)
                     : 0.0;
    for (std::size_t i = 0; i < kNumWaitStates; ++i) {
      s.wait_delta[i] = sat_sub(now.waits[i], prev.waits[i]);
    }

    evaluate_slo(&s);

    auto& ring = rings_[ri];
    ring.push_back(std::move(s));
    while (ring.size() > ring_depth_) ring.pop_front();
    raw_[ri] = std::move(now);
  }
  ticks_.fetch_add(1, std::memory_order_release);
}

void Sampler::evaluate_slo(RankSample* s) {
  for (int i = 0; i < kNumSloRules; ++i) {
    const auto thr = static_cast<double>(cvar(kSloRules[i].threshold));
    if (thr <= 0.0) continue;  // rule disabled
    double value = 0.0;
    switch (i) {
      case 0: value = s->credit_stall_pct; break;
      case 1: value = static_cast<double>(s->unexpected_depth); break;
      case 2: value = static_cast<double>(s->unexpected_growth); break;
      case 3: value = s->idle_pct; break;
      default: break;
    }
    if (value <= thr) continue;
    Alert a;
    a.rule = kSloRules[i].name;
    a.rule_index = i;
    a.rank = s->rank;
    a.value = value;
    a.threshold = thr;
    a.t_ns = s->t_ns;
    a.seq = s->seq;
    s->alerts.push_back(a);
    alerts_fired_.fetch_add(1, std::memory_order_release);
    if (opts_.emit_trace_alerts && trace_enabled_) {
      // Structured alert event into the (sampler thread's) trace ring: seq 0
      // keeps it out of message chains; tag carries the rule index, bytes the
      // observed value, wait_ns the threshold -- all integers by contract.
      trace::record(trace::Event{.ts_ns = rt::now_ns(),
                                 .seq = 0,
                                 .bytes = static_cast<std::uint64_t>(value),
                                 .lclock = world_.fabric().lclock(s->rank),
                                 .wait_ns = static_cast<std::uint64_t>(thr),
                                 .rank = s->rank,
                                 .peer = -1,
                                 .tag = i,
                                 .vci = 0,
                                 .wait = 0,
                                 .kind = trace::Ev::Alert});
    }
  }
}

void Sampler::sample_now() { tick(); }

std::vector<RankSample> Sampler::history(Rank r) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& ring = rings_.at(static_cast<std::size_t>(r));
  return std::vector<RankSample>(ring.begin(), ring.end());
}

void Sampler::export_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    for (const RankSample& s : ring) os << render_json(s) << '\n';
  }
}

std::string Sampler::timeline_json(std::size_t last_n) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const RankSample*> sel;
  for (const auto& ring : rings_) {
    const std::size_t start = ring.size() > last_n ? ring.size() - last_n : 0;
    for (std::size_t i = start; i < ring.size(); ++i) sel.push_back(&ring[i]);
  }
  std::sort(sel.begin(), sel.end(), [](const RankSample* a, const RankSample* b) {
    if (a->seq != b->seq) return a->seq < b->seq;
    return a->rank < b->rank;
  });
  std::ostringstream o;
  o << '[';
  for (std::size_t i = 0; i < sel.size(); ++i) {
    o << (i == 0 ? "" : ",") << render_json(*sel[i]);
  }
  o << ']';
  return o.str();
}

std::string Sampler::prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream o;
  const std::int64_t ms = std::max<std::int64_t>(1, cvar(Cv::SamplerIntervalMs));

  o << "# HELP lwmpi_sampler_interval_seconds Configured telemetry sampling interval.\n"
       "# TYPE lwmpi_sampler_interval_seconds gauge\n"
       "lwmpi_sampler_interval_seconds ";
  put_double(o, static_cast<double>(ms) / 1000.0);
  o << '\n';

  o << "# HELP lwmpi_sampler_ticks_total Sampling intervals recorded.\n"
       "# TYPE lwmpi_sampler_ticks_total counter\n"
       "lwmpi_sampler_ticks_total "
    << ticks_.load(std::memory_order_relaxed) << '\n';

  o << "# HELP lwmpi_alerts_total SLO rule firings since start.\n"
       "# TYPE lwmpi_alerts_total counter\n"
       "lwmpi_alerts_total "
    << alerts_fired_.load(std::memory_order_relaxed) << '\n';

  // Latest-interval derived gauges, one series per rank.
  struct G {
    const char* name;
    const char* help;
    double (*get)(const RankSample&);
  };
  static constexpr G kRankGauges[] = {
      {"lwmpi_sends_per_second", "Interval send rate (operations issued).",
       [](const RankSample& s) { return s.sends_per_s; }},
      {"lwmpi_recvs_per_second", "Interval receive-post rate.",
       [](const RankSample& s) { return s.recvs_per_s; }},
      {"lwmpi_send_p99_seconds", "Interval-local p99 send completion latency.",
       [](const RankSample& s) { return static_cast<double>(s.send_p99_ns) / 1e9; }},
      {"lwmpi_recv_p99_seconds", "Interval-local p99 receive completion latency.",
       [](const RankSample& s) { return static_cast<double>(s.recv_p99_ns) / 1e9; }},
      {"lwmpi_credit_stall_ratio", "Credit-stall time over the interval (0-1).",
       [](const RankSample& s) { return s.credit_stall_pct / 100.0; }},
      {"lwmpi_progress_idle_ratio", "Idle fraction of progress calls (0-1).",
       [](const RankSample& s) { return s.idle_pct / 100.0; }},
      {"lwmpi_alerts_active", "SLO alerts fired on the latest interval.",
       [](const RankSample& s) { return static_cast<double>(s.alerts.size()); }},
  };
  for (const G& g : kRankGauges) {
    o << "# HELP " << g.name << ' ' << g.help << "\n# TYPE " << g.name << " gauge\n";
    for (const auto& ring : rings_) {
      if (ring.empty()) continue;
      const RankSample& s = ring.back();
      o << g.name << "{rank=\"" << s.rank << "\"} ";
      put_double(o, g.get(s));
      o << '\n';
    }
  }

  // Per-(rank, vci) lane gauges from the latest interval.
  struct L {
    const char* name;
    const char* help;
    double (*get)(const LaneSample&);
  };
  static constexpr L kLaneGauges[] = {
      {"lwmpi_lane_sends_per_second", "Interval sends issued on this channel.",
       [](const LaneSample& l) { return l.send_per_s; }},
      {"lwmpi_lane_delivered_per_second", "Interval packets delivered to this lane.",
       [](const LaneSample& l) { return l.deliver_per_s; }},
      {"lwmpi_lane_delivered_bytes_per_second",
       "Interval payload bytes delivered to this lane.",
       [](const LaneSample& l) { return l.deliver_bytes_per_s; }},
      {"lwmpi_lane_injected_bytes_per_second",
       "Interval payload bytes injected toward this lane.",
       [](const LaneSample& l) { return l.inject_bytes_per_s; }},
      {"lwmpi_lane_posted_depth", "Posted-receive queue depth at tick time.",
       [](const LaneSample& l) { return static_cast<double>(l.posted_depth); }},
      {"lwmpi_lane_unexpected_depth", "Unexpected-queue depth at tick time.",
       [](const LaneSample& l) { return static_cast<double>(l.unexpected_depth); }},
  };
  for (const L& g : kLaneGauges) {
    o << "# HELP " << g.name << ' ' << g.help << "\n# TYPE " << g.name << " gauge\n";
    for (const auto& ring : rings_) {
      if (ring.empty()) continue;
      const RankSample& s = ring.back();
      for (std::size_t v = 0; v < s.lanes.size(); ++v) {
        o << g.name << "{rank=\"" << s.rank << "\",vci=\"" << v << "\"} ";
        put_double(o, g.get(s.lanes[v]));
        o << '\n';
      }
    }
  }

  // Cumulative wait-state classification counts (from the raw baselines --
  // these are since-construction totals, the natural Prometheus counter).
  o << "# HELP lwmpi_wait_events_total Classified wait events since sampler start.\n"
       "# TYPE lwmpi_wait_events_total counter\n";
  for (std::size_t r = 0; r < raw_.size(); ++r) {
    for (std::size_t i = 0; i < kNumWaitStates; ++i) {
      o << "lwmpi_wait_events_total{rank=\"" << r << "\",class=\"" << wait_name(i)
        << "\"} " << raw_[r].waits[i] << '\n';
    }
  }

  // Per-peer traffic from the aggregate profiler's communication matrix
  // (cumulative; zero cells are skipped so the series count stays sparse even
  // at large rank counts). Only present when WorldOptions::prof is on.
  if (const Profiler* p = world_.profiler(); p != nullptr) {
    const CommMatrix& m = p->matrix();
    o << "# HELP lwmpi_prof_peer_bytes_total Payload bytes injected src->dst by class.\n"
         "# TYPE lwmpi_prof_peer_bytes_total counter\n";
    for (int src = 0; src < m.nranks(); ++src) {
      for (int dst = 0; dst < m.nranks(); ++dst) {
        for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
          const auto cls = static_cast<MsgClass>(c);
          const std::uint64_t b = m.bytes(src, dst, cls);
          if (b == 0) continue;
          o << "lwmpi_prof_peer_bytes_total{rank=\"" << src << "\",peer=\"" << dst
            << "\",class=\"" << to_string(cls) << "\"} " << b << '\n';
        }
      }
    }
    o << "# HELP lwmpi_prof_peer_msgs_total Messages injected src->dst by class.\n"
         "# TYPE lwmpi_prof_peer_msgs_total counter\n";
    for (int src = 0; src < m.nranks(); ++src) {
      for (int dst = 0; dst < m.nranks(); ++dst) {
        for (std::size_t c = 0; c < kNumMsgClasses; ++c) {
          const auto cls = static_cast<MsgClass>(c);
          const std::uint64_t n = m.count(src, dst, cls);
          if (n == 0) continue;
          o << "lwmpi_prof_peer_msgs_total{rank=\"" << src << "\",peer=\"" << dst
            << "\",class=\"" << to_string(cls) << "\"} " << n << '\n';
        }
      }
    }
    o << "# HELP lwmpi_prof_phase_depth Profiler phase-stack depth per rank.\n"
         "# TYPE lwmpi_prof_phase_depth gauge\n";
    for (int r = 0; r < p->nranks(); ++r) {
      o << "lwmpi_prof_phase_depth{rank=\"" << r << "\"} " << p->rank(r).phase_depth()
        << '\n';
    }
    o << "# HELP lwmpi_prof_pop_warnings_total Phase pops on an empty stack.\n"
         "# TYPE lwmpi_prof_pop_warnings_total counter\n";
    for (int r = 0; r < p->nranks(); ++r) {
      o << "lwmpi_prof_pop_warnings_total{rank=\"" << r << "\"} "
        << p->rank(r).pop_warnings() << '\n';
    }
  }

  // Flight-recorder counters (the rec_* pvars). Only present when
  // WorldOptions::record is on.
  if (Recorder* rec = world_.recorder(); rec != nullptr) {
    struct R {
      const char* name;
      const char* help;
      std::uint64_t (*get)(const RankRec&);
    };
    static constexpr R kRecCounters[] = {
        {"lwmpi_rec_ops_total", "Surface calls captured by the flight recorder.",
         [](const RankRec& r) { return r.total_ops(); }},
        {"lwmpi_rec_ops_dropped_total", "Recorded ops overwritten before flush.",
         [](const RankRec& r) { return r.dropped(); }},
        {"lwmpi_rec_ops_sampled_total", "Recorded ops carrying TSC timing anchors.",
         [](const RankRec& r) { return r.anchor_count(); }},
        {"lwmpi_rec_flushed_bytes_total", "Trace-bundle bytes written per rank.",
         [](const RankRec& r) { return r.flushed_bytes(); }},
        {"lwmpi_rec_flush_seconds_total", "Seconds spent flushing per rank.",
         [](const RankRec& r) { return r.flush_ns(); }},
    };
    for (const R& g : kRecCounters) {
      const bool seconds = std::string_view(g.name).ends_with("seconds_total");
      o << "# HELP " << g.name << ' ' << g.help << "\n# TYPE " << g.name << " counter\n";
      for (int r = 0; r < world_.nranks(); ++r) {
        o << g.name << "{rank=\"" << r << "\"} ";
        if (seconds) {
          put_double(o, static_cast<double>(g.get(rec->rank(r))) / 1e9);
        } else {
          o << g.get(rec->rank(r));
        }
        o << '\n';
      }
    }
  }

  return o.str();
}

}  // namespace lwmpi::obs
