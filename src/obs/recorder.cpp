#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/engine.hpp"
#include "net/fabric.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi::obs {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view rec_kind_name(std::uint8_t kind) noexcept {
  if (kind == kRecKindSendrecvRecv) return "sendrecv.recv";
  if (kind == kRecKindWaitItem) return "wait.item";
  if (kind < static_cast<std::uint8_t>(Callsite::kCount)) {
    return to_string(static_cast<Callsite>(kind));
  }
  return "?";
}

RecTotals read_rec_totals(Engine& e) {
  RecTotals t;
  net::Fabric& fab = e.world().fabric();
  for (int v = 0; v < e.num_vcis(); ++v) {
    const VciCounters& c = e.vci_counters(v);
    t.sends_eager += c.get(VciCtr::SendEager);
    t.sends_rdv += c.get(VciCtr::SendRdv);
    t.recvs_posted += c.get(VciCtr::RecvPosted);
    t.matches += c.get(VciCtr::PostedMatch);
    t.misses += c.get(VciCtr::PostedMiss);
    t.injected_bytes += fab.injected_bytes(e.world_rank(), v);
  }
  t.injected = fab.injected(e.world_rank());
  return t;
}

// --- RankRec -----------------------------------------------------------------

RankRec::RankRec(int rank, int nvcis, std::size_t ring_depth, int sample_shift)
    : ring_(pow2_at_least(ring_depth)),
      ring_mask_(ring_.size() - 1),
      sample_mask_((1ull << std::clamp(sample_shift, 0, 32)) - 1),
      links_(256, 0),  // pre-sized past the warm request range: no hot growth
      rank_(rank),
      nvcis_(nvcis),
      sample_shift_(std::clamp(sample_shift, 0, 32)),
      // Enough anchor slots to cover every sampled op still resident in the
      // ring, with slack so the gap chain rarely breaks at the seam.
      anchors_(pow2_at_least((ring_.size() >> std::clamp(sample_shift, 0, 32)) + 8)),
      anchor_mask_(anchors_.size() - 1) {}

void RankRec::bind_grow(std::vector<std::uint64_t>& m, std::uint32_t slot) {
  // Flat-index space is dense (slot x 8 VCIs); grow geometrically with
  // headroom so binds amortize to O(1).
  m.resize(std::max<std::size_t>(slot + 128, m.size() * 2), 0);
}

void RankRec::stamp(std::uint64_t op_index, std::uint64_t t0) noexcept {
  const std::uint64_t t1 = lat_now_ns();
  RecAnchor a;
  a.op_index = op_index;
  a.t0_ns = t0;
  if (last_end_ns_ != 0 && t0 > last_end_ns_) {
    const std::uint64_t gap = t0 - last_end_ns_;
    a.gap_ns = gap > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(gap);
  }
  const std::uint64_t dur = t1 > t0 ? t1 - t0 : 0;
  a.dur_ns = dur > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(dur);
  last_end_ns_ = t1;
  const std::uint64_t ai = anchor_head_.load(std::memory_order_relaxed);
  anchors_[ai & anchor_mask_] = a;
  anchor_head_.store(ai + 1, std::memory_order_release);
}

std::vector<std::pair<std::uint64_t, RecOp>> RankRec::last_ops(std::size_t n) const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t avail = std::min<std::uint64_t>(head, ring_.size());
  const std::uint64_t take = std::min<std::uint64_t>(n, avail);
  std::vector<std::pair<std::uint64_t, RecOp>> out;
  out.reserve(static_cast<std::size_t>(take));
  for (std::uint64_t i = head - take; i < head; ++i) {
    out.emplace_back(i, ring_[i & (ring_.size() - 1)]);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, RecOp>> RankRec::collect() const {
  return last_ops(ring_.size());
}

std::vector<RecAnchor> RankRec::collect_anchors() const {
  const std::uint64_t head = anchor_head_.load(std::memory_order_acquire);
  const std::uint64_t take = std::min<std::uint64_t>(head, anchors_.size());
  std::vector<RecAnchor> out;
  out.reserve(static_cast<std::size_t>(take));
  for (std::uint64_t i = head - take; i < head; ++i) {
    out.push_back(anchors_[i & (anchors_.size() - 1)]);
  }
  return out;
}

// --- Recorder ----------------------------------------------------------------

Recorder::Recorder(int nranks, int nvcis, std::size_t ring_depth, int sample_shift)
    : nranks_(nranks), nvcis_(nvcis) {
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_.push_back(std::make_unique<RankRec>(r, nvcis, ring_depth, sample_shift));
  }
}

bool Recorder::flush(const std::string& prefix, const std::vector<RecTotals>& totals,
                     const std::string& provenance_json) {
  bool ok = true;
  std::string sidecar_ranks;
  for (int r = 0; r < nranks_; ++r) {
    const std::uint64_t t_flush0 = rt::now_ns();
    RankRec& rr = *ranks_[static_cast<std::size_t>(r)];
    const auto records = rr.collect();
    const auto anchors = rr.collect_anchors();

    LwtraceHeader h;
    h.rank = static_cast<std::uint32_t>(r);
    h.nranks = static_cast<std::uint32_t>(nranks_);
    h.nvcis = static_cast<std::uint32_t>(nvcis_);
    h.sample_shift = static_cast<std::uint32_t>(rr.sample_shift());
    h.eager_threshold = eager_threshold_;
    h.total_ops = rr.total_ops();
    h.nrecords = records.size();
    const RecTotals t =
        static_cast<std::size_t>(r) < totals.size() ? totals[static_cast<std::size_t>(r)]
                                                    : RecTotals{};
    const std::uint64_t tvals[kNumRecTotals] = {t.sends_eager,  t.sends_rdv,
                                                t.recvs_posted, t.matches,
                                                t.misses,       t.injected,
                                                t.injected_bytes};
    std::memcpy(h.totals, tvals, sizeof(tvals));

    // Merge anchors into the surviving records. Both sequences are ordered by
    // op index, so one forward sweep pairs them up; anchors whose op scrolled
    // out of the ring are skipped.
    std::vector<DiskRec> disk(records.size());
    std::size_t ai = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto& [idx, op] = records[i];
      DiskRec& d = disk[i];
      d.peer = op.peer;
      d.tag = op.tag;
      d.bytes = op.bytes;
      d.link = op.link;
      d.vci = op.vci;
      d.kind = op.kind;
      while (ai < anchors.size() && anchors[ai].op_index < idx) ++ai;
      if (ai < anchors.size() && anchors[ai].op_index == idx) {
        d.t0_ns = anchors[ai].t0_ns;
        d.dur_ns = anchors[ai].dur_ns;
        d.gap_ns = anchors[ai].gap_ns;
        if (h.base_ns == 0) h.base_ns = anchors[ai].t0_ns;
        ++ai;
      }
    }

    const std::string path = prefix + ".rank" + std::to_string(r) + ".lwtrace";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
      ok = false;
      continue;
    }
    f.write(reinterpret_cast<const char*>(&h), sizeof(h));
    if (!disk.empty()) {
      f.write(reinterpret_cast<const char*>(disk.data()),
              static_cast<std::streamsize>(disk.size() * sizeof(DiskRec)));
    }
    f.flush();
    const std::uint64_t wrote = sizeof(h) + disk.size() * sizeof(DiskRec);
    rr.note_flush(wrote, rt::now_ns() - t_flush0);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"rank\":%d,\"total_ops\":%llu,\"records\":%llu,\"anchors\":%llu,"
                  "\"sends_eager\":%llu,\"sends_rdv\":%llu,\"recvs_posted\":%llu,"
                  "\"matches\":%llu,\"misses\":%llu,\"injected\":%llu,"
                  "\"injected_bytes\":%llu}",
                  r == 0 ? "" : ",", r, static_cast<unsigned long long>(h.total_ops),
                  static_cast<unsigned long long>(h.nrecords),
                  static_cast<unsigned long long>(anchors.size()),
                  static_cast<unsigned long long>(t.sends_eager),
                  static_cast<unsigned long long>(t.sends_rdv),
                  static_cast<unsigned long long>(t.recvs_posted),
                  static_cast<unsigned long long>(t.matches),
                  static_cast<unsigned long long>(t.misses),
                  static_cast<unsigned long long>(t.injected),
                  static_cast<unsigned long long>(t.injected_bytes));
    sidecar_ranks += buf;
  }

  // The JSON sidecar: provenance plus the per-rank totals duplicated from the
  // binary headers for external tooling (the replay itself reads the binary).
  std::ofstream side(prefix + ".json", std::ios::trunc);
  if (!side) return false;
  side << "{\"lwmpi_trace\":" << kLwtraceVersion << ",\"nranks\":" << nranks_
       << ",\"nvcis\":" << nvcis_ << "," << provenance_json
       << ",\"ranks\":[" << sidecar_ranks << "]}\n";
  return ok && static_cast<bool>(side);
}

}  // namespace lwmpi::obs
