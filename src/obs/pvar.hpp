// MPI_T-style performance-variable (pvar) interface: the introspection tier
// of the observability subsystem.
//
// MPI-3.1 section 14 defines the tool information interface: performance
// variables are enumerated at runtime, described by (name, class, binding)
// metadata, and read through sessions so concurrent tools do not disturb each
// other. We mirror that shape on the lwmpi engine: LWMPI_T_pvar_num /
// get_info enumerate the registry, a PvarSession binds to one Engine, and
// start/read/reset operate per variable. Tests and benches address counters
// by *name*, never by reaching into engine internals, so the counter set can
// grow without breaking its consumers.
//
// Variables bound to a channel (PvarBind::Vci) can be read per VCI or summed
// across the poll set; engine- and fabric-bound variables ignore the vci
// argument. Counter-class variables are session-relative: start()/reset()
// capture a baseline and read() returns the delta, so a bench measures its
// own traffic even on a long-lived world. Level and high-watermark variables
// are absolute.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace lwmpi {
class Engine;
}

namespace lwmpi::obs {

enum class PvarClass : std::uint8_t {
  Counter,        // monotonically increasing; session-relative reads
  Level,          // instantaneous value (queue depth, live requests)
  Highwatermark,  // maximum level observed
};

enum class PvarBind : std::uint8_t {
  Engine,  // one value per rank
  Vci,     // one value per channel; read(vci = -1) sums the poll set
};

struct PvarInfo {
  std::string_view name;
  std::string_view desc;
  PvarClass klass = PvarClass::Counter;
  PvarBind bind = PvarBind::Engine;
};

const char* to_string(PvarClass c) noexcept;

// --- registry enumeration ---------------------------------------------------
int LWMPI_T_pvar_num() noexcept;
Err LWMPI_T_pvar_get_info(int index, PvarInfo* info) noexcept;
// Name -> index, or -1 when unknown (MPI_T_PVAR_GET_INDEX analog).
int LWMPI_T_pvar_index(std::string_view name) noexcept;

// --- sessions ---------------------------------------------------------------
class PvarSession {
 public:
  PvarSession() = default;

  Engine* engine() const noexcept { return engine_; }
  bool valid() const noexcept { return engine_ != nullptr; }

 private:
  friend Err LWMPI_T_pvar_session_create(Engine& e, PvarSession* s);
  friend Err LWMPI_T_pvar_session_free(PvarSession* s);
  friend Err LWMPI_T_pvar_start(PvarSession& s, int index);
  friend Err LWMPI_T_pvar_read(PvarSession& s, int index, std::uint64_t* value);
  friend Err LWMPI_T_pvar_read_vci(PvarSession& s, int index, int vci,
                                   std::uint64_t* value);
  friend Err LWMPI_T_pvar_reset(PvarSession& s, int index);

  Engine* engine_ = nullptr;
  std::vector<std::uint64_t> baseline_;  // per pvar, summed-over-VCIs space
};

Err LWMPI_T_pvar_session_create(Engine& e, PvarSession* s);
Err LWMPI_T_pvar_session_free(PvarSession* s);

// Capture the session baseline for a counter-class variable (subsequent reads
// are deltas). Level/high-watermark variables have no baseline; starting them
// succeeds and is a no-op, as for continuous MPI_T variables.
Err LWMPI_T_pvar_start(PvarSession& s, int index);

// Read a variable summed over the engine's channels (or its single engine- or
// rank-level value), minus the session baseline for counters.
Err LWMPI_T_pvar_read(PvarSession& s, int index, std::uint64_t* value);

// Read one channel of a Vci-bound variable (no baseline subtraction; the
// session baseline is kept in summed space). vci = -1 sums like pvar_read.
Err LWMPI_T_pvar_read_vci(PvarSession& s, int index, int vci, std::uint64_t* value);

// Re-zero a counter from this session's point of view (MPI_T reset analog:
// the underlying counter is not disturbed, other sessions are unaffected).
Err LWMPI_T_pvar_reset(PvarSession& s, int index);

}  // namespace lwmpi::obs
