// Control-variable registry (obs/cvar.hpp).
//
// Storage is a process-global table of relaxed atomics, seeded lazily from the
// environment on first access (magic-static init, thread-safe). String-valued
// variables (netmod_default, prof_default_phase, prof_path) keep their values
// under a mutex -- string reads are rare (World construction), so the lock is
// off every hot path.
#include "obs/cvar.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "core/config.hpp"

namespace lwmpi::obs {

const char* to_string(CvarScope s) noexcept {
  switch (s) {
    case CvarScope::Startup: return "startup";
    case CvarScope::Runtime: return "runtime";
    case CvarScope::Constant: return "constant";
  }
  return "?";
}

namespace {

constexpr CvarInfo kInfo[kNumCvars] = {
    {"sampler_interval_ms", "telemetry sampler period (ms); re-read every tick",
     CvarScope::Runtime, false, 100},
    {"sampler_ring_depth", "per-rank telemetry sample ring capacity (intervals kept)",
     CvarScope::Startup, false, 120},
    {"lat_sample_shift", "override BuildConfig::lat_sample_shift (1 in 2^n stamped)",
     CvarScope::Startup, false, 6},
    {"trace_enable", "override BuildConfig::trace (0/1)", CvarScope::Startup, false, 0},
    {"watchdog_stall_ms", "default WatchdogOptions no-progress window (ms)",
     CvarScope::Startup, false, 250},
    {"watchdog_poll_ms", "default WatchdogOptions sampling period (ms)",
     CvarScope::Startup, false, 20},
    {"netmod_default", "default WorldOptions::netmod backend name",
     CvarScope::Startup, true, 0, "mailbox"},
    {"slo_credit_stall_pct", "alert when interval credit-stall ratio exceeds (%; 0 = off)",
     CvarScope::Runtime, false, 0},
    {"slo_unexpected_depth", "alert when unexpected-queue depth exceeds (0 = off)",
     CvarScope::Runtime, false, 0},
    {"slo_unexpected_growth",
     "alert when unexpected depth grows by more than this per interval (0 = off)",
     CvarScope::Runtime, false, 0},
    {"slo_progress_idle_pct",
     "alert when interval progress-idle fraction exceeds (%; 0 = off)",
     CvarScope::Runtime, false, 0},
    {"prof", "enable the aggregate profiler (WorldOptions::prof default)",
     CvarScope::Startup, false, 0},
    {"prof_default_phase", "name of the profiler's default phase (phase 0)",
     CvarScope::Startup, true, 0, "main"},
    {"prof_path", "World-teardown profile JSON artifact path (empty = no file)",
     CvarScope::Startup, true, 0, ""},
    {"record", "enable the flight recorder (WorldOptions::record default)",
     CvarScope::Startup, false, 0},
    {"record_path", "flight-recorder trace-bundle prefix (empty = no flush)",
     CvarScope::Startup, true, 0, ""},
    {"record_ring_depth", "per-rank flight-recorder op-ring capacity (records kept)",
     CvarScope::Startup, false, 1024},
    {"record_sample_shift", "1 in 2^n recorded ops carry TSC timing (0 = stamp all)",
     CvarScope::Startup, false, 8},
    {"max_vcis", "compile-time per-rank VCI ceiling (echo)", CvarScope::Constant, false,
     kMaxVcis},
};

struct Registry {
  std::atomic<std::int64_t> value[kNumCvars];
  std::atomic<bool> overridden[kNumCvars];
  std::mutex str_mu;              // guards the string slots below
  std::string strs[kNumCvars];    // payloads of the is_string variables

  Registry() { load_env(); }

  // Seed every slot from its default, then apply LWMPI_CVAR_* bindings.
  void load_env() {
    for (int i = 0; i < kNumCvars; ++i) {
      value[i].store(kInfo[i].default_value, std::memory_order_relaxed);
      overridden[i].store(false, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lk(str_mu);
      for (int i = 0; i < kNumCvars; ++i) strs[i] = std::string(kInfo[i].default_str);
    }
    for (int i = 0; i < kNumCvars; ++i) {
      if (kInfo[i].scope == CvarScope::Constant) continue;  // not env-bindable
      const std::string env = cvar_env_name(static_cast<Cv>(i));
      const char* raw = std::getenv(env.c_str());
      if (raw == nullptr || *raw == '\0') continue;
      if (kInfo[i].is_string) {
        std::lock_guard<std::mutex> lk(str_mu);
        strs[i] = raw;
        overridden[i].store(true, std::memory_order_relaxed);
      } else {
        char* end = nullptr;
        const long long v = std::strtoll(raw, &end, 10);
        if (end != raw && *end == '\0') {
          value[i].store(v, std::memory_order_relaxed);
          overridden[i].store(true, std::memory_order_relaxed);
        }
      }
    }
  }
};

Registry& reg() {
  static Registry r;
  return r;
}

bool bad_index(int index) noexcept { return index < 0 || index >= kNumCvars; }

}  // namespace

int LWMPI_T_cvar_num() noexcept { return kNumCvars; }

Err LWMPI_T_cvar_get_info(int index, CvarInfo* info) noexcept {
  if (bad_index(index) || info == nullptr) return Err::Arg;
  *info = kInfo[index];
  return Err::Success;
}

int LWMPI_T_cvar_index(std::string_view name) noexcept {
  for (int i = 0; i < kNumCvars; ++i) {
    if (kInfo[i].name == name) return i;
  }
  return -1;
}

Err LWMPI_T_cvar_read(int index, std::int64_t* value) noexcept {
  if (bad_index(index) || value == nullptr || kInfo[index].is_string) return Err::Arg;
  *value = reg().value[index].load(std::memory_order_relaxed);
  return Err::Success;
}

Err LWMPI_T_cvar_write(int index, std::int64_t value) noexcept {
  if (bad_index(index) || kInfo[index].is_string) return Err::Arg;
  if (kInfo[index].scope == CvarScope::Constant) return Err::Arg;
  Registry& r = reg();
  r.value[index].store(value, std::memory_order_relaxed);
  r.overridden[index].store(true, std::memory_order_relaxed);
  return Err::Success;
}

Err LWMPI_T_cvar_read_str(int index, std::string* value) {
  if (bad_index(index) || value == nullptr || !kInfo[index].is_string) return Err::Arg;
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.str_mu);
  *value = r.strs[index];
  return Err::Success;
}

Err LWMPI_T_cvar_write_str(int index, std::string_view value) {
  if (bad_index(index) || !kInfo[index].is_string) return Err::Arg;
  if (kInfo[index].scope == CvarScope::Constant) return Err::Arg;
  Registry& r = reg();
  {
    std::lock_guard<std::mutex> lk(r.str_mu);
    r.strs[index] = std::string(value);
  }
  r.overridden[index].store(true, std::memory_order_relaxed);
  return Err::Success;
}

std::int64_t cvar(Cv v) noexcept {
  return reg().value[static_cast<int>(v)].load(std::memory_order_relaxed);
}

void cvar_set(Cv v, std::int64_t value) noexcept {
  LWMPI_T_cvar_write(static_cast<int>(v), value);
}

std::string cvar_str(Cv v) {
  std::string s;
  LWMPI_T_cvar_read_str(static_cast<int>(v), &s);
  return s;
}

bool cvar_overridden(Cv v) noexcept {
  return reg().overridden[static_cast<int>(v)].load(std::memory_order_relaxed);
}

std::string cvar_env_name(Cv v) {
  std::string s = "LWMPI_CVAR_";
  for (char c : kInfo[static_cast<int>(v)].name) {
    s += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string cvar_report() {
  std::ostringstream o;
  for (int i = 0; i < kNumCvars; ++i) {
    const Cv v = static_cast<Cv>(i);
    o << "  " << kInfo[i].name;
    for (std::size_t pad = kInfo[i].name.size(); pad < 24; ++pad) o << ' ';
    o << ' ' << to_string(kInfo[i].scope) << " = ";
    if (kInfo[i].is_string) {
      o << cvar_str(v);
    } else {
      o << cvar(v);
    }
    if (cvar_overridden(v)) o << "  (set)";
    o << '\n';
  }
  return o.str();
}

namespace detail {
void cvar_reload_env_for_testing() { reg().load_env(); }
}  // namespace detail

}  // namespace lwmpi::obs
