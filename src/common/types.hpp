// Core public types, handles, and constants for lwmpi.
//
// Handles follow the MPICH convention: plain integers with the object kind
// encoded in the upper bits. Builtin datatype handles additionally encode the
// element size, so that size queries on the fast path are pure arithmetic
// (no dereference) -- the property the paper's Section 3 proposals rely on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lwmpi {

using Rank = std::int32_t;
using Tag = std::int32_t;

// --- Special rank/tag values (mirroring MPI_PROC_NULL, MPI_ANY_*). ---
inline constexpr Rank kProcNull = -2;
inline constexpr Rank kAnySource = -3;
inline constexpr Tag kAnyTag = -4;
inline constexpr Rank kUndefined = -32766;

// Maximum user tag value (MPI guarantees at least 32767).
inline constexpr Tag kTagUb = (1 << 23) - 1;

// --- Error codes. ---
// A small closed set; `Engine::error_string` renders them for humans.
enum class Err : std::int32_t {
  Success = 0,
  Buffer,     // invalid buffer pointer
  Count,      // negative count
  Datatype,   // invalid / uncommitted datatype
  Tag,        // tag out of range
  Comm,       // invalid communicator
  Rank,       // rank out of communicator range
  Request,    // invalid request handle
  Root,       // invalid root for a collective
  Group,      // invalid group
  Op,         // invalid reduction op
  Win,        // invalid window
  Disp,       // target displacement out of window bounds
  LockType,   // invalid lock type
  Truncate,   // receive buffer too small for matched message
  RmaSync,    // RMA call outside an access epoch
  Arg,        // other invalid argument
  Pending,    // operation not yet complete (internal)
  Internal,   // implementation bug / unreachable state
  NotSupported,
};

inline constexpr bool ok(Err e) { return e == Err::Success; }

const char* error_string(Err e) noexcept;

// --- Handle encoding -------------------------------------------------------
// 32-bit handles: [ kind:4 | payload:28 ].
enum class HandleKind : std::uint32_t {
  Invalid = 0x0,
  Comm = 0x1,
  BuiltinDatatype = 0x2,
  DerivedDatatype = 0x3,
  Request = 0x4,
  Win = 0x5,
  Group = 0x6,
  Op = 0x7,
};

inline constexpr std::uint32_t kHandleKindShift = 28;

inline constexpr std::uint32_t make_handle(HandleKind k, std::uint32_t payload) {
  return (static_cast<std::uint32_t>(k) << kHandleKindShift) | (payload & 0x0FFFFFFFu);
}
inline constexpr HandleKind handle_kind(std::uint32_t h) {
  return static_cast<HandleKind>(h >> kHandleKindShift);
}
inline constexpr std::uint32_t handle_payload(std::uint32_t h) { return h & 0x0FFFFFFFu; }

// --- Communicators ---------------------------------------------------------
using Comm = std::uint32_t;
inline constexpr Comm kCommNull = 0;
inline constexpr Comm kCommWorld = make_handle(HandleKind::Comm, 0);
inline constexpr Comm kCommSelf = make_handle(HandleKind::Comm, 1);
// Predefined communicator handles for the Section 3.3 proposal
// (MPI_COMM_1..MPI_COMM_4 in the paper). They are plain array slots.
inline constexpr int kNumPredefinedComms = 4;
inline constexpr Comm kComm1 = make_handle(HandleKind::Comm, 2);
inline constexpr Comm kComm2 = make_handle(HandleKind::Comm, 3);
inline constexpr Comm kComm3 = make_handle(HandleKind::Comm, 4);
inline constexpr Comm kComm4 = make_handle(HandleKind::Comm, 5);
inline constexpr std::uint32_t kFirstDynamicCommSlot = 6;

// --- Datatypes --------------------------------------------------------------
// Builtin datatype handles encode [kind | size:12 | id:16].
using Datatype = std::uint32_t;
inline constexpr Datatype kDatatypeNull = 0;

inline constexpr Datatype builtin_type(std::uint32_t size, std::uint32_t id) {
  return make_handle(HandleKind::BuiltinDatatype, (size << 16) | id);
}
inline constexpr bool is_builtin(Datatype d) {
  return handle_kind(d) == HandleKind::BuiltinDatatype;
}
// Size of a builtin type: arithmetic on the handle, no memory access.
inline constexpr std::size_t builtin_size(Datatype d) {
  return (handle_payload(d) >> 16) & 0xFFFu;
}
inline constexpr std::uint32_t builtin_id(Datatype d) { return handle_payload(d) & 0xFFFFu; }

inline constexpr Datatype kChar = builtin_type(1, 1);
inline constexpr Datatype kSignedChar = builtin_type(1, 2);
inline constexpr Datatype kUnsignedChar = builtin_type(1, 3);
inline constexpr Datatype kByte = builtin_type(1, 4);
inline constexpr Datatype kShort = builtin_type(2, 5);
inline constexpr Datatype kUnsignedShort = builtin_type(2, 6);
inline constexpr Datatype kInt = builtin_type(4, 7);
inline constexpr Datatype kUnsigned = builtin_type(4, 8);
inline constexpr Datatype kLong = builtin_type(8, 9);
inline constexpr Datatype kUnsignedLong = builtin_type(8, 10);
inline constexpr Datatype kLongLong = builtin_type(8, 11);
inline constexpr Datatype kUnsignedLongLong = builtin_type(8, 12);
inline constexpr Datatype kFloat = builtin_type(4, 13);
inline constexpr Datatype kDouble = builtin_type(8, 14);
inline constexpr Datatype kInt8 = builtin_type(1, 15);
inline constexpr Datatype kInt16 = builtin_type(2, 16);
inline constexpr Datatype kInt32 = builtin_type(4, 17);
inline constexpr Datatype kInt64 = builtin_type(8, 18);
inline constexpr Datatype kUint8 = builtin_type(1, 19);
inline constexpr Datatype kUint16 = builtin_type(2, 20);
inline constexpr Datatype kUint32 = builtin_type(4, 21);
inline constexpr Datatype kUint64 = builtin_type(8, 22);
inline constexpr std::uint32_t kNumBuiltinTypes = 23;  // ids 1..22 used

// --- Requests ---------------------------------------------------------------
using Request = std::uint32_t;
inline constexpr Request kRequestNull = 0;

// --- Windows ----------------------------------------------------------------
using Win = std::uint32_t;
inline constexpr Win kWinNull = 0;

// --- Groups -----------------------------------------------------------------
using Group = std::uint32_t;
inline constexpr Group kGroupNull = 0;
inline constexpr Group kGroupEmpty = make_handle(HandleKind::Group, 0);

// --- Reduction ops ----------------------------------------------------------
enum class ReduceOp : std::uint32_t {
  Sum = 0,
  Prod,
  Max,
  Min,
  LAnd,
  LOr,
  BAnd,
  BOr,
  BXor,
  Replace,  // RMA-only (MPI_REPLACE)
  NoOp,     // RMA-only (MPI_NO_OP; get_accumulate fetch)
};
inline constexpr std::uint32_t kNumReduceOps = 11;

// --- Status -----------------------------------------------------------------
struct Status {
  Rank source = kUndefined;
  Tag tag = kUndefined;
  Err error = Err::Success;
  std::size_t byte_count = 0;  // bytes received

  // Element count for a given datatype (builtin only needs arithmetic).
  std::size_t count_elems(std::size_t type_size) const {
    return type_size == 0 ? 0 : byte_count / type_size;
  }
};

// RMA lock types.
enum class LockType : std::int32_t { Exclusive = 1, Shared = 2 };

}  // namespace lwmpi
