// Chunked object table with stable addresses and lock-free reads.
//
// The VCI refactor lets multiple application threads operate on one Engine
// concurrently, which rules out std::vector for the request/comm/window
// tables: growth would move elements out from under a reader on another
// thread. StableTable allocates storage in fixed-size chunks that never move,
// publishes growth with a release store of the element count, and serves
// lock-free reads behind an acquire load -- a reader that observes index i
// in range is guaranteed to see the fully-constructed chunk holding it.
//
// Growth is serialized by a mutex; elements are default-constructed and never
// destroyed until the table itself dies (slots are recycled by the caller,
// e.g. via a free list or an in_use flag).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace lwmpi::common {

template <typename T, std::size_t ChunkSlots = 64, std::size_t MaxChunks = 1024>
class StableTable {
 public:
  StableTable() = default;
  StableTable(const StableTable&) = delete;
  StableTable& operator=(const StableTable&) = delete;

  // Default-construct one more slot; returns its index. Thread-safe.
  std::uint32_t emplace() {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint32_t idx = size_.load(std::memory_order_relaxed);
    const std::size_t chunk = idx / ChunkSlots;
    if (chunk >= MaxChunks) std::abort();  // structural cap, far beyond real use
    if (chunks_[chunk] == nullptr) chunks_[chunk] = std::make_unique<Chunk>();
    size_.store(idx + 1, std::memory_order_release);
    return idx;
  }

  // Lock-free; nullptr when idx is out of range. The acquire pairs with the
  // release in emplace(), ordering the chunk-pointer write before visibility.
  T* at(std::uint32_t idx) noexcept {
    if (idx >= size_.load(std::memory_order_acquire)) return nullptr;
    return &(*chunks_[idx / ChunkSlots])[idx % ChunkSlots];
  }
  const T* at(std::uint32_t idx) const noexcept {
    return const_cast<StableTable*>(this)->at(idx);
  }

  std::uint32_t size() const noexcept { return size_.load(std::memory_order_acquire); }

 private:
  using Chunk = std::array<T, ChunkSlots>;
  std::mutex mu_;
  std::atomic<std::uint32_t> size_{0};
  std::array<std::unique_ptr<Chunk>, MaxChunks> chunks_{};
};

}  // namespace lwmpi::common
