#include "common/types.hpp"

namespace lwmpi {

const char* error_string(Err e) noexcept {
  switch (e) {
    case Err::Success: return "success";
    case Err::Buffer: return "invalid buffer pointer";
    case Err::Count: return "invalid count argument";
    case Err::Datatype: return "invalid or uncommitted datatype";
    case Err::Tag: return "tag out of range";
    case Err::Comm: return "invalid communicator";
    case Err::Rank: return "rank out of range for communicator";
    case Err::Request: return "invalid request handle";
    case Err::Root: return "invalid root rank";
    case Err::Group: return "invalid group";
    case Err::Op: return "invalid reduction operation";
    case Err::Win: return "invalid window";
    case Err::Disp: return "target displacement out of window bounds";
    case Err::LockType: return "invalid lock type";
    case Err::Truncate: return "message truncated on receive";
    case Err::RmaSync: return "RMA call outside an access epoch";
    case Err::Arg: return "invalid argument";
    case Err::Pending: return "operation pending";
    case Err::Internal: return "internal error";
    case Err::NotSupported: return "operation not supported";
  }
  return "unknown error";
}

}  // namespace lwmpi
