// MPICH/Original (CH3-style) baseline device.
//
// The original device funnels every operation through layered machinery: an
// abstract-device vtable dispatch, a mandatory request object, and a software
// send queue that the progress engine drains. The extra layering is both
// modeled (instruction charges) and real (allocation + queue transit), which
// is what gives the baseline its higher latency in the rate benchmarks and
// application studies.
#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"

namespace lwmpi {

Err Engine::orig_isend(const SendParams& p, Request* req) {
  // ADI3-style layered dispatch: MPI layer -> device vtable -> channel.
  cost::charge(cost::Category::FunctionCall, cost::kOrigAdiDispatch);
  cost::charge(cost::Category::RedundantChecks, cost::kOrigExtraBranches);
  // CH3 always allocates and enqueues a full request state machine.
  cost::charge(cost::Reason::RequestManagement, cost::kOrigSendQueueing);
  // The remainder of the path is the common stack walk; inject_or_queue
  // routes the built packet through the software send queue for this device.
  return ch4_isend(p, req);
}

void Engine::drain_send_queue() {
  while (!send_queue_.empty()) {
    QueuedSend q = send_queue_.front();
    send_queue_.pop_front();
    fabric_.inject(self_, q.dst_world, q.pkt);
  }
}

}  // namespace lwmpi
