// MPICH/Original (CH3-style) baseline device.
//
// The original device funnels every operation through layered machinery: an
// abstract-device vtable dispatch, a mandatory request object, and a software
// send queue that the progress engine drains. The extra layering is both
// modeled (instruction charges) and real (allocation + queue transit), which
// is what gives the baseline its higher latency in the rate benchmarks and
// application studies.
#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"

namespace lwmpi {

Err Engine::orig_isend(const SendParams& p, Request* req) {
  // ADI3-style layered dispatch: MPI layer -> device vtable -> channel.
  cost::charge(cost::Category::OrigLayering, cost::kOrigAdiDispatch);
  cost::charge(cost::Category::OrigLayering, cost::kOrigExtraBranches);
  // CH3 always allocates and enqueues a full request state machine.
  cost::charge(cost::Category::OrigLayering, cost::kOrigSendQueueing);
  // The remainder of the path is the common stack walk; inject_or_queue
  // routes the built packet through the software send queue for this device.
  return ch4_isend(p, req);
}

// Drain one channel's software send queue onto the fabric. Caller holds the
// VCI's lock (the progress sweep, or an entry point that queued the packet).
void Engine::drain_send_queue(Vci& v) {
  while (!v.send_queue.empty()) {
    QueuedSend q = v.send_queue.front();
    v.send_queue.pop_front();
    v.send_q_depth.fetch_sub(1, std::memory_order_release);
    // Queue-residency latency: how long the packet sat staged before the
    // progress engine pushed it onto the wire -- the time cost of the CH3
    // layering that the instruction model charges as kOrigSendQueueing.
    if (q.enq_ts != 0) {
      v.lat.record(obs::LatPath::SendQueueWait, obs::lat_now_ns() - q.enq_ts);
    }
    if (cfg_.trace && q.pkt->hdr.seq != 0) {
      trace_msg(obs::trace::Ev::Inject, q.pkt->hdr.seq, q.pkt->hdr.vci, q.dst_world,
                q.pkt->hdr.tag, q.pkt->hdr.total_bytes);
    }
    fabric_.inject(self_, q.dst_world, q.pkt);
  }
}

}  // namespace lwmpi
