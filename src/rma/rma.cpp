// One-sided communication.
//
// Window creation is collective. Data movement has three concrete paths:
//   1. ch4 "native" path -- contiguous data, implemented as a direct memory
//      access into the target's exposed region (the in-process analog of
//      RDMA); accumulates take the target's accumulate lock for atomicity.
//   2. ch4 active-message fallback -- noncontiguous layouts ride AM packets
//      serviced by the target's progress engine, acknowledged for flush.
//   3. orig (CH3-style) path -- *every* operation is recorded in a deferred
//      operation list and issued as active messages at synchronization,
//      which is exactly what makes MPI_PUT cost ~1342 instructions there.
//
// VCI routing: a window inherits its creating communicator's channel. Every
// origin-side AM is stamped with the window's vci and every target-side reply
// echoes the incoming packet's vci, so a window's whole AM conversation stays
// on one lane and handle_am always runs under that channel's lock.
#include <algorithm>
#include <cstring>
#include <mutex>

#include "coll/ops.hpp"
#include "core/engine.hpp"
#include "cost/meter.hpp"
#include "cost/model.hpp"
#include "obs/recorder.hpp"
#include "obs/watchdog.hpp"
#include "runtime/backoff.hpp"
#include "runtime/world.hpp"

namespace lwmpi {

namespace {
// lock_held[] states.
constexpr std::uint8_t kLockNone = 0;
constexpr std::uint8_t kLockShared = 1;
constexpr std::uint8_t kLockExclusive = 2;
constexpr std::uint8_t kLockPendingGrant = 3;
constexpr std::uint8_t kLockPendingUnlock = 4;
}  // namespace

// ---------------------------------------------------------------------------
// Window lifecycle
// ---------------------------------------------------------------------------

void Engine::WindowLocal::reset() {
  win_id.store(0, std::memory_order_relaxed);
  global.reset();
  comm = kCommNull;
  vci = 0;
  epoch.store(Epoch::None, std::memory_order_relaxed);
  lock_held.reset();
  lock_targets = 0;
  outstanding_acks.store(0, std::memory_order_relaxed);
  pending.clear();
  excl_held = false;
  shared_count = 0;
  lock_waiters.clear();
  pscw_posts_seen.store(0, std::memory_order_relaxed);
  pscw_completes_seen.store(0, std::memory_order_relaxed);
  pscw_access_group.clear();
  pscw_exposure_group.clear();
}

Engine::WindowLocal* Engine::win_obj(Win win) noexcept {
  if (handle_kind(win) != HandleKind::Win) return nullptr;
  WindowLocal* w = windows_.at(handle_payload(win));
  if (w == nullptr || !w->in_use.load(std::memory_order_acquire)) return nullptr;
  return w;
}

const Engine::WindowLocal* Engine::win_obj(Win win) const noexcept {
  return const_cast<Engine*>(this)->win_obj(win);
}

int Engine::prof_win_vci(Win win) noexcept {
  if (prof_ == nullptr) return 0;
  const WindowLocal* w = win_obj(win);
  return w == nullptr ? 0 : static_cast<int>(w->vci);
}

Err Engine::win_create(void* base, std::size_t bytes, int disp_unit, Comm comm, Win* win) {
  CommObject* c = comm_obj(comm);
  if (c == nullptr) return Err::Comm;
  if (win == nullptr || disp_unit <= 0) return Err::Arg;
  const int p = c->map.size();

  std::uint32_t id = 0;
  std::shared_ptr<rma::WindowGlobal> g;
  if (c->rank == 0) {
    id = world_.alloc_win_id();
    g = std::make_shared<rma::WindowGlobal>();
    g->id = id;
    g->nranks = p;
    g->peers.resize(static_cast<std::size_t>(p));
    g->world_ranks = c->map.to_list();
    g->rma_locks.reserve(static_cast<std::size_t>(p));
    g->acc_locks.reserve(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      g->rma_locks.push_back(std::make_unique<std::shared_mutex>());
      g->acc_locks.push_back(std::make_unique<std::mutex>());
    }
    world_.register_window(g);
  }
  if (Err e = bcast(&id, 1, kUint32, 0, comm); !ok(e)) return e;
  if (c->rank != 0) {
    g = world_.find_window(id);
    if (g == nullptr) return Err::Internal;
  }
  g->peers[static_cast<std::size_t>(c->rank)] =
      rma::WindowGlobal::Peer{static_cast<std::byte*>(base), bytes, disp_unit};

  // Reserve a slot, build it, then publish with a release store on in_use.
  // The local slot must be visible BEFORE the creation barrier completes: a
  // fast peer may exit the barrier and immediately send this window an active
  // message (e.g. a PSCW post token), which our progress engine routes by
  // window id while we are still inside the barrier.
  std::uint32_t slot = 0;
  {
    std::lock_guard<std::mutex> lk(win_mu_);
    for (; slot < windows_.size(); ++slot) {
      WindowLocal* cand = windows_.at(slot);
      if (cand != nullptr && !cand->in_use.load(std::memory_order_acquire) &&
          !cand->reserved) {
        break;
      }
    }
    if (slot == windows_.size()) slot = windows_.emplace();
    windows_.at(slot)->reserved = true;
  }
  WindowLocal& w = *windows_.at(slot);
  w.reset();
  w.global = g;
  w.comm = comm;
  w.vci = c->vci;  // the window's AM traffic rides its communicator's channel
  // Value-initialized array: all entries start at kLockNone (0).
  w.lock_held = std::make_unique<std::atomic<std::uint8_t>[]>(static_cast<std::size_t>(p));
  w.lock_targets = p;
  w.win_id.store(g->id, std::memory_order_relaxed);
  w.in_use.store(true, std::memory_order_release);

  if (Err e = barrier(comm); !ok(e)) return e;
  *win = make_handle(HandleKind::Win, slot);
  return Err::Success;
}

Err Engine::win_free(Win* win) {
  if (win == nullptr) return Err::Win;
  WindowLocal* w = win_obj(*win);
  if (w == nullptr) return Err::Win;
  if (Err e = win_flush_all(*win); !ok(e)) return e;
  if (Err e = barrier(w->comm); !ok(e)) return e;
  if (comm_obj(w->comm)->rank == 0) world_.unregister_window(w->global->id);
  {
    // Tear down under the owning channel's lock: handle_am dispatches to this
    // window only while holding the same lock, so nothing is mid-flight here.
    Vci& v = *vcis_[w->vci];
    std::lock_guard<std::recursive_mutex> lk(v.mu);
    w->in_use.store(false, std::memory_order_release);
    w->win_id.store(0, std::memory_order_relaxed);
    w->global.reset();
  }
  {
    std::lock_guard<std::mutex> lk(win_mu_);
    w->reserved = false;
  }
  *win = kWinNull;
  return Err::Success;
}

Err Engine::win_target_address(Rank target, std::uint64_t target_disp, Win win,
                               void** addr) const {
  const WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  if (target < 0 || target >= w->global->nranks) return Err::Rank;
  const auto& peer = w->global->peers[static_cast<std::size_t>(target)];
  const std::uint64_t off = target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  if (off > peer.bytes) return Err::Disp;
  *addr = peer.base + off;
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Epoch checking
// ---------------------------------------------------------------------------

Err Engine::rma_check_epoch(const WindowLocal& w, Rank target) const noexcept {
  const WindowLocal::Epoch ep = w.epoch.load(std::memory_order_relaxed);
  if (ep == WindowLocal::Epoch::Fence || ep == WindowLocal::Epoch::LockAll ||
      ep == WindowLocal::Epoch::Pscw) {
    return Err::Success;
  }
  if (target >= 0 && target < w.lock_targets) {
    const std::uint8_t h = w.lock_held[static_cast<std::size_t>(target)].load(
        std::memory_order_acquire);
    if (h == kLockShared || h == kLockExclusive) return Err::Success;
  }
  return Err::RmaSync;
}

// ---------------------------------------------------------------------------
// Data movement entry points
// ---------------------------------------------------------------------------

Err Engine::put(const void* origin, int origin_count, Datatype origin_dt, Rank target,
                std::uint64_t target_disp, int target_count, Datatype target_dt, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::Put, prof_win_vci(win),
                     prof_bytes(origin_count, origin_dt));
  // RMA ops are recorded for the timeline but skip-counted by replay (window
  // geometry is not captured in the trace).
  obs::RecScope rsc(rec_, obs::Callsite::Put, target, 0, 0,
                    rec_bytes(origin_count, origin_dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasRma);
  }
  WindowLocal* w = win_obj(win);
  VciGate gate(w == nullptr ? nullptr : vcis_[w->vci].get(), cfg_.thread_safety,
               cost::kThreadGateRma);
  if (cfg_.error_checking) {
    if (Err e = check_win(win); !ok(e)) return e;
    cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
    if (target != kProcNull && (target < 0 || target >= w->global->nranks)) return Err::Rank;
    if (Err e = check_count(origin_count); !ok(e)) return e;
    if (Err e = check_buffer(origin, origin_count); !ok(e)) return e;
    if (Err e = check_datatype(origin_dt); !ok(e)) return e;
    if (target != kProcNull) {
      // Target datatype and displacement bounds validate together.
      cost::charge(cost::Category::ErrCheck, cost::kErrDispRange);
      if (!types_.committed_or_builtin(target_dt)) return Err::Datatype;
      const auto& peer = w->global->peers[static_cast<std::size_t>(target)];
      const std::uint64_t need = target_disp * static_cast<std::uint64_t>(peer.disp_unit) +
                                 dt::packed_size(types_, target_count, target_dt);
      if (need > peer.bytes) return Err::Disp;
      if (Err e = rma_check_epoch(*w, target); !ok(e)) return e;
    }
  }
  if (w == nullptr) return Err::Win;

  cost::charge(cost::Category::MandProcNull, cost::kMandProcNull);
  if (target == kProcNull) return Err::Success;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaOp);
  rt::spin_for_ns(sim_put_ns_);  // simulated-CPU mode

  if (device_ == DeviceKind::Orig) {
    // CH3-style: analyze, record, defer. The layered path is charged here and
    // the operation is issued as an active message at synchronization.
    cost::charge(cost::Category::OrigLayering, cost::kOrigPutLayerCalls);
    cost::charge(cost::Category::OrigLayering, cost::kOrigPutGenericChecks);
    cost::charge(cost::Category::MandObject, cost::kMandObjectDeref);
    comm_obj(w->comm)->map.to_world(target);  // translation still happens
    cost::charge(cost::Category::OrigLayering, cost::kOrigPutAmBuild);
    WindowLocal::PendingOp op;
    op.kind = WindowLocal::PendingOp::Kind::Put;
    op.target = target;
    op.disp = target_disp;
    op.target_count = target_count;
    op.target_dt = target_dt;
    op.data.resize(dt::packed_size(types_, origin_count, origin_dt));
    dt::pack(types_, origin, origin_count, origin_dt, op.data.data());
    cost::charge(cost::Category::OrigLayering, cost::kOrigPutOpQueue);
    cost::charge(cost::Category::OrigLayering, cost::kOrigPutPt2ptIssue);
    w->pending.push_back(std::move(op));
    return Err::Success;
  }

  // ch4: window object access + netmod selection.
  cost::charge(cost::Category::MandObject, cost::kMandObjectDeref);
  if (!cfg_.ipo) {
    cost::charge(cost::Category::Redundant, cost::kRedundantWinAttrs);
    cost::charge(cost::Category::Redundant, cost::kRedundantDatatypeResolve);
    cost::charge(cost::Category::Redundant, cost::kRedundantGenericCompletion);
  }
  comm_obj(w->comm)->map.to_world(target);  // network address translation
  cost::charge(cost::Category::MandLocality, cost::kMandLocalitySelect);
  cost::charge(cost::Category::MandRequest, cost::kMandRmaOpTracking);

  if (types_.is_contiguous(origin_dt) && types_.is_contiguous(target_dt)) {
    return rma_direct_put(*w, origin, origin_count, origin_dt, target, target_disp,
                          target_count, target_dt);
  }
  return rma_am_put(*w, win, origin, origin_count, origin_dt, target, target_disp,
                    target_count, target_dt);
}

Err Engine::rma_direct_put(WindowLocal& w, const void* origin, int ocount, Datatype odt,
                           Rank target, std::uint64_t target_disp, int tcount, Datatype tdt) {
  const auto& peer = w.global->peers[static_cast<std::size_t>(target)];
  // Offset -> virtual address translation (Section 3.2).
  cost::charge(cost::Category::MandVa, cost::kMandVaTranslate);
  std::byte* dst = peer.base + target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  const std::size_t obytes = dt::packed_size(types_, ocount, odt);
  const std::size_t tbytes = dt::packed_size(types_, tcount, tdt);
  const std::size_t n = std::min(obytes, tbytes);
  cost::charge(cost::Category::MandInject, cost::kMandInjectResidualRma);
  const Rank dst_world = w.global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.charge_injection(self_, dst_world);  // descriptor cost, no packet
  std::memcpy(dst, origin, n);
  return Err::Success;
}

Err Engine::rma_am_put(WindowLocal& w, Win /*win*/, const void* origin, int ocount,
                       Datatype odt, Rank target, std::uint64_t target_disp, int tcount,
                       Datatype tdt) {
  const auto& peer = w.global->peers[static_cast<std::size_t>(target)];
  rt::Packet* pkt = rt::PacketPool::alloc();
  pkt->hdr.kind = rt::PacketKind::AmPut;
  pkt->hdr.vci = static_cast<std::uint8_t>(w.vci);
  pkt->hdr.src_world = self_;
  pkt->hdr.win_id = w.global->id;
  pkt->hdr.offset = target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  pkt->hdr.dt_count = static_cast<std::uint32_t>(tcount);

  const std::size_t data_bytes = dt::packed_size(types_, ocount, odt);
  if (is_builtin(tdt)) {
    pkt->hdr.dt = tdt;
    pkt->payload.resize(data_bytes);
    dt::pack(types_, origin, ocount, odt, pkt->payload.data());
  } else {
    // Ship the flattened target layout ahead of the data.
    pkt->hdr.dt = kDatatypeNull;
    const std::vector<std::byte> blob = dt::serialize_info(*types_.info(tdt));
    pkt->payload.resize(blob.size() + data_bytes);
    std::memcpy(pkt->payload.data(), blob.data(), blob.size());
    dt::pack(types_, origin, ocount, odt, pkt->payload.data() + blob.size());
  }
  pkt->hdr.total_bytes = data_bytes;

  w.outstanding_acks.fetch_add(1, std::memory_order_release);
  const Rank dst_world = w.global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.inject(self_, dst_world, pkt);
  return Err::Success;
}

Err Engine::put_va(const void* origin, int origin_count, Datatype origin_dt, Rank target,
                   void* target_va, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::PutVa, prof_win_vci(win),
                     prof_bytes(origin_count, origin_dt));
  obs::RecScope rsc(rec_, obs::Callsite::PutVa, target, 0, 0,
                    rec_bytes(origin_count, origin_dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasRma);
  }
  WindowLocal* w = win_obj(win);
  VciGate gate(w == nullptr ? nullptr : vcis_[w->vci].get(), cfg_.thread_safety,
               cost::kThreadGateRma);
  if (cfg_.error_checking) {
    if (Err e = check_win(win); !ok(e)) return e;
    cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
    if (target < 0 || target >= w->global->nranks) return Err::Rank;
    if (Err e = check_count(origin_count); !ok(e)) return e;
    if (Err e = check_buffer(origin, origin_count); !ok(e)) return e;
    if (Err e = check_datatype(origin_dt); !ok(e)) return e;
    if (Err e = rma_check_epoch(*w, target); !ok(e)) return e;
  }
  if (w == nullptr) return Err::Win;
  if (device_ != DeviceKind::Ch4) return Err::NotSupported;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaOp);

  // The proposal's payoff: no window-kind check, no offset->VA translation.
  cost::charge(cost::Category::MandObject, cost::kMandObjectDeref);
  comm_obj(w->comm)->map.to_world(target);
  cost::charge(cost::Category::MandLocality, cost::kMandLocalitySelect);
  cost::charge(cost::Category::MandRequest, cost::kMandRmaOpTracking);
  cost::charge(cost::Category::MandInject, cost::kMandInjectResidualRma);
  const Rank dst_world = w->global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.charge_injection(self_, dst_world);
  const std::size_t n = dt::packed_size(types_, origin_count, origin_dt);
  if (types_.is_contiguous(origin_dt)) {
    std::memcpy(target_va, origin, n);
  } else {
    std::vector<std::byte> tmp(n);
    dt::pack(types_, origin, origin_count, origin_dt, tmp.data());
    std::memcpy(target_va, tmp.data(), n);
  }
  return Err::Success;
}

Err Engine::get(void* origin, int origin_count, Datatype origin_dt, Rank target,
                std::uint64_t target_disp, int target_count, Datatype target_dt, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::Get, prof_win_vci(win),
                     prof_bytes(origin_count, origin_dt));
  obs::RecScope rsc(rec_, obs::Callsite::Get, target, 0, 0,
                    rec_bytes(origin_count, origin_dt));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasRma);
  }
  WindowLocal* w = win_obj(win);
  VciGate gate(w == nullptr ? nullptr : vcis_[w->vci].get(), cfg_.thread_safety,
               cost::kThreadGateRma);
  if (cfg_.error_checking) {
    if (Err e = check_win(win); !ok(e)) return e;
    cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
    if (target != kProcNull && (target < 0 || target >= w->global->nranks)) return Err::Rank;
    if (Err e = check_count(origin_count); !ok(e)) return e;
    if (Err e = check_buffer(origin, origin_count); !ok(e)) return e;
    if (Err e = check_datatype(origin_dt); !ok(e)) return e;
    if (target != kProcNull) {
      cost::charge(cost::Category::ErrCheck, cost::kErrDispRange);
      if (!types_.committed_or_builtin(target_dt)) return Err::Datatype;
      if (Err e = rma_check_epoch(*w, target); !ok(e)) return e;
    }
  }
  if (w == nullptr) return Err::Win;
  cost::charge(cost::Category::MandProcNull, cost::kMandProcNull);
  if (target == kProcNull) return Err::Success;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaOp);

  if (device_ == DeviceKind::Orig) {
    WindowLocal::PendingOp op;
    op.kind = WindowLocal::PendingOp::Kind::Get;
    op.target = target;
    op.disp = target_disp;
    op.target_count = target_count;
    op.target_dt = target_dt;
    op.result = origin;
    op.result_count = origin_count;
    op.result_dt = origin_dt;
    w->pending.push_back(std::move(op));
    return Err::Success;
  }

  cost::charge(cost::Category::MandObject, cost::kMandObjectDeref);
  comm_obj(w->comm)->map.to_world(target);
  cost::charge(cost::Category::MandLocality, cost::kMandLocalitySelect);
  cost::charge(cost::Category::MandRequest, cost::kMandRmaOpTracking);

  const auto& peer = w->global->peers[static_cast<std::size_t>(target)];
  if (types_.is_contiguous(origin_dt) && types_.is_contiguous(target_dt)) {
    cost::charge(cost::Category::MandVa, cost::kMandVaTranslate);
    cost::charge(cost::Category::MandInject, cost::kMandInjectResidualRma);
    const Rank dst_world = w->global->world_ranks[static_cast<std::size_t>(target)];
    fabric_.charge_injection(self_, dst_world);
    const std::byte* src =
        peer.base + target_disp * static_cast<std::uint64_t>(peer.disp_unit);
    const std::size_t n = std::min(dt::packed_size(types_, origin_count, origin_dt),
                                   dt::packed_size(types_, target_count, target_dt));
    std::memcpy(origin, src, n);
    return Err::Success;
  }

  // AM fallback: request the target to pack and reply.
  Request r = alloc_request(RequestSlot::Kind::Recv, w->vci);
  RequestSlot* slot = req_slot(r);
  slot->rbuf = origin;
  slot->rcount = origin_count;
  slot->rdt = origin_dt;

  rt::Packet* pkt = rt::PacketPool::alloc();
  pkt->hdr.kind = rt::PacketKind::AmGetReq;
  pkt->hdr.vci = static_cast<std::uint8_t>(w->vci);
  pkt->hdr.src_world = self_;
  pkt->hdr.win_id = w->global->id;
  pkt->hdr.offset = target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  pkt->hdr.origin_req = r;
  pkt->hdr.dt_count = static_cast<std::uint32_t>(target_count);
  if (is_builtin(target_dt)) {
    pkt->hdr.dt = target_dt;
  } else {
    pkt->hdr.dt = kDatatypeNull;
    pkt->payload = dt::serialize_info(*types_.info(target_dt));
  }
  w->outstanding_acks.fetch_add(1, std::memory_order_release);
  const Rank dst_world = w->global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.inject(self_, dst_world, pkt);
  return Err::Success;
}

Err Engine::accumulate(const void* origin, int count, Datatype dt_, Rank target,
                       std::uint64_t target_disp, ReduceOp op, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::Accumulate, prof_win_vci(win),
                     prof_bytes(count, dt_));
  obs::RecScope rsc(rec_, obs::Callsite::Accumulate, target, 0, 0,
                    rec_bytes(count, dt_));
  if (!cfg_.ipo) {
    cost::charge(cost::Category::CallOverhead, cost::kCallEntry + cost::kCallPmpiAliasRma);
  }
  WindowLocal* w = win_obj(win);
  VciGate gate(w == nullptr ? nullptr : vcis_[w->vci].get(), cfg_.thread_safety,
               cost::kThreadGateRma);
  if (w == nullptr) return Err::Win;
  if (cfg_.error_checking) {
    if (Err e = check_win(win); !ok(e)) return e;
    cost::charge(cost::Category::ErrCheck,
                 cost::kErrRankRange + cost::kErrOpValid);
    if (target != kProcNull && (target < 0 || target >= w->global->nranks)) return Err::Rank;
    if (!coll::op_defined(op, dt_)) return Err::Op;
    if (Err e = check_count(count); !ok(e)) return e;
    if (Err e = check_buffer(origin, count); !ok(e)) return e;
    if (target != kProcNull) {
      if (Err e = rma_check_epoch(*w, target); !ok(e)) return e;
    }
  }
  if (!is_builtin(dt_)) return Err::Datatype;  // predefined ops, basic types
  cost::charge(cost::Category::MandProcNull, cost::kMandProcNull);
  if (target == kProcNull) return Err::Success;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaOp);

  if (device_ == DeviceKind::Orig) {
    WindowLocal::PendingOp pop;
    pop.kind = WindowLocal::PendingOp::Kind::Acc;
    pop.target = target;
    pop.disp = target_disp;
    pop.target_count = count;
    pop.target_dt = dt_;
    pop.op = op;
    pop.data.resize(static_cast<std::size_t>(count) * builtin_size(dt_));
    dt::pack(types_, origin, count, dt_, pop.data.data());
    w->pending.push_back(std::move(pop));
    return Err::Success;
  }

  cost::charge(cost::Category::MandObject, cost::kMandObjectDeref);
  comm_obj(w->comm)->map.to_world(target);
  cost::charge(cost::Category::MandVa, cost::kMandVaTranslate);
  cost::charge(cost::Category::MandRequest, cost::kMandRmaOpTracking);
  cost::charge(cost::Category::MandInject, cost::kMandInjectResidualRma);

  const auto& peer = w->global->peers[static_cast<std::size_t>(target)];
  std::byte* dst = peer.base + target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  const Rank dst_world = w->global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.charge_injection(self_, dst_world);
  std::lock_guard<std::mutex> lk(*w->global->acc_locks[static_cast<std::size_t>(target)]);
  return coll::apply_op(op, dt_, dst, origin, static_cast<std::size_t>(count));
}

Err Engine::get_accumulate(const void* origin, int count, Datatype dt_, void* result,
                           Rank target, std::uint64_t target_disp, ReduceOp op, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::GetAccumulate, prof_win_vci(win),
                     prof_bytes(count, dt_));
  obs::RecScope rsc(rec_, obs::Callsite::GetAccumulate, target, 0, 0,
                    rec_bytes(count, dt_));
  WindowLocal* w = win_obj(win);
  VciGate gate(w == nullptr ? nullptr : vcis_[w->vci].get(), cfg_.thread_safety,
               cost::kThreadGateRma);
  if (w == nullptr) return Err::Win;
  if (!is_builtin(dt_)) return Err::Datatype;
  if (cfg_.error_checking) {
    if (target != kProcNull && (target < 0 || target >= w->global->nranks)) return Err::Rank;
    if (!coll::op_defined(op, dt_)) return Err::Op;
    if (target != kProcNull) {
      if (Err e = rma_check_epoch(*w, target); !ok(e)) return e;
    }
  }
  if (target == kProcNull) return Err::Success;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaOp);
  const std::size_t bytes = static_cast<std::size_t>(count) * builtin_size(dt_);

  if (device_ == DeviceKind::Orig) {
    WindowLocal::PendingOp pop;
    pop.kind = WindowLocal::PendingOp::Kind::GetAcc;
    pop.target = target;
    pop.disp = target_disp;
    pop.target_count = count;
    pop.target_dt = dt_;
    pop.op = op;
    pop.result = result;
    pop.result_count = count;
    pop.result_dt = dt_;
    pop.data.resize(bytes);
    dt::pack(types_, origin, count, dt_, pop.data.data());
    w->pending.push_back(std::move(pop));
    return Err::Success;
  }

  const auto& peer = w->global->peers[static_cast<std::size_t>(target)];
  std::byte* dst = peer.base + target_disp * static_cast<std::uint64_t>(peer.disp_unit);
  const Rank dst_world = w->global->world_ranks[static_cast<std::size_t>(target)];
  fabric_.charge_injection(self_, dst_world);
  std::lock_guard<std::mutex> lk(*w->global->acc_locks[static_cast<std::size_t>(target)]);
  std::memcpy(result, dst, bytes);  // fetch old value
  if (op == ReduceOp::NoOp) return Err::Success;
  return coll::apply_op(op, dt_, dst, origin, static_cast<std::size_t>(count));
}

// ---------------------------------------------------------------------------
// Synchronization
// ---------------------------------------------------------------------------

Err Engine::rma_wait_acks(WindowLocal& w, std::uint32_t until) {
  if (fabric_.profile().blackhole) {
    // Infinitely-fast-network methodology: every issued operation is treated
    // as instantaneously remote-complete (nothing was transmitted).
    w.outstanding_acks.store(0, std::memory_order_relaxed);
    return Err::Success;
  }
  if (w.outstanding_acks.load(std::memory_order_acquire) > until) {
    // Lazy watchdog annotation: only a wait that actually spins is reportable
    // as a blocking site (an outer Win_fence/Win_unlock scope wins if set).
    obs::BlockScope block(*this, "Win_flush");
    rt::Backoff backoff;
    while (w.outstanding_acks.load(std::memory_order_acquire) > until) {
      progress();
      if (w.outstanding_acks.load(std::memory_order_acquire) > until) backoff.pause();
    }
  }
  return Err::Success;
}

Err Engine::orig_flush_pending(WindowLocal& w, Win win, Rank target) {
  if (device_ != DeviceKind::Orig) return Err::Success;
  // The deferred-op list is guarded by the window's channel lock (the data
  // movement entry points append under their VciGate). Recursive, so taking
  // it again under an already-gated caller is fine.
  Vci& v = *vcis_[w.vci];
  std::lock_guard<std::recursive_mutex> lk(v.mu);
  std::vector<WindowLocal::PendingOp> keep;
  for (WindowLocal::PendingOp& op : w.pending) {
    if (target >= 0 && op.target != target) {
      keep.push_back(std::move(op));
      continue;
    }
    const auto& peer = w.global->peers[static_cast<std::size_t>(op.target)];
    const Rank dst_world = w.global->world_ranks[static_cast<std::size_t>(op.target)];
    rt::Packet* pkt = rt::PacketPool::alloc();
    pkt->hdr.vci = static_cast<std::uint8_t>(w.vci);
    pkt->hdr.src_world = self_;
    pkt->hdr.win_id = w.global->id;
    pkt->hdr.offset = op.disp * static_cast<std::uint64_t>(peer.disp_unit);
    pkt->hdr.dt_count = static_cast<std::uint32_t>(op.target_count);
    pkt->hdr.op = static_cast<std::uint16_t>(op.op);
    switch (op.kind) {
      case WindowLocal::PendingOp::Kind::Put: {
        pkt->hdr.kind = rt::PacketKind::AmPut;
        pkt->hdr.total_bytes = op.data.size();
        if (is_builtin(op.target_dt)) {
          pkt->hdr.dt = op.target_dt;
          pkt->payload = std::move(op.data);
        } else {
          pkt->hdr.dt = kDatatypeNull;
          const std::vector<std::byte> blob = dt::serialize_info(*types_.info(op.target_dt));
          pkt->payload.resize(blob.size() + op.data.size());
          std::memcpy(pkt->payload.data(), blob.data(), blob.size());
          std::memcpy(pkt->payload.data() + blob.size(), op.data.data(), op.data.size());
        }
        break;
      }
      case WindowLocal::PendingOp::Kind::Acc: {
        pkt->hdr.kind = rt::PacketKind::AmAcc;
        pkt->hdr.dt = op.target_dt;
        pkt->payload = std::move(op.data);
        pkt->hdr.total_bytes = pkt->payload.size();
        break;
      }
      case WindowLocal::PendingOp::Kind::Get: {
        pkt->hdr.kind = rt::PacketKind::AmGetReq;
        Request r = alloc_request(RequestSlot::Kind::Recv, w.vci);
        RequestSlot* slot = req_slot(r);
        slot->rbuf = op.result;
        slot->rcount = op.result_count;
        slot->rdt = op.result_dt;
        pkt->hdr.origin_req = r;
        if (is_builtin(op.target_dt)) {
          pkt->hdr.dt = op.target_dt;
        } else {
          pkt->hdr.dt = kDatatypeNull;
          pkt->payload = dt::serialize_info(*types_.info(op.target_dt));
        }
        break;
      }
      case WindowLocal::PendingOp::Kind::GetAcc: {
        pkt->hdr.kind = rt::PacketKind::AmGetAccReq;
        Request r = alloc_request(RequestSlot::Kind::Recv, w.vci);
        RequestSlot* slot = req_slot(r);
        slot->rbuf = op.result;
        slot->rcount = op.result_count;
        slot->rdt = op.result_dt;
        pkt->hdr.origin_req = r;
        pkt->hdr.dt = op.target_dt;
        pkt->payload = std::move(op.data);
        break;
      }
    }
    w.outstanding_acks.fetch_add(1, std::memory_order_release);
    fabric_.inject(self_, dst_world, pkt);
  }
  w.pending = std::move(keep);
  (void)win;
  return Err::Success;
}

Err Engine::win_fence(Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinFence, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinFence, 0, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  obs::BlockScope block(*this, "Win_fence");
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaFlush);
  if (Err e = orig_flush_pending(*w, win, -1); !ok(e)) return e;
  if (Err e = rma_wait_acks(*w, 0); !ok(e)) return e;
  if (Err e = barrier(w->comm); !ok(e)) return e;
  w->epoch.store(WindowLocal::Epoch::Fence, std::memory_order_relaxed);
  return Err::Success;
}

Err Engine::win_flush(Rank target, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinFlush, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinFlush, target, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaFlush);
  if (Err e = orig_flush_pending(*w, win, target); !ok(e)) return e;
  // Per-target ack tracking is aggregate here; waiting for zero is a
  // (correct) over-approximation of flushing one target.
  return rma_wait_acks(*w, 0);
}

Err Engine::win_flush_all(Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinFlush, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinFlush, -1, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  vcis_[w->vci]->counters.inc(obs::VciCtr::RmaFlush);
  if (Err e = orig_flush_pending(*w, win, -1); !ok(e)) return e;
  return rma_wait_acks(*w, 0);
}

Err Engine::win_lock(LockType type, Rank target, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinLock, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinLock, target, static_cast<int>(type), 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  if (target < 0 || target >= w->global->nranks) return Err::Rank;
  std::atomic<std::uint8_t>& held = w->lock_held[static_cast<std::size_t>(target)];
  if (cfg_.error_checking) {
    cost::charge(cost::Category::ErrCheck, cost::kErrRankRange);
    if (type != LockType::Exclusive && type != LockType::Shared) return Err::LockType;
    if (held.load(std::memory_order_acquire) != kLockNone) return Err::RmaSync;
  }
  obs::BlockScope block(*this, "Win_lock");

  if (device_ == DeviceKind::Ch4) {
    // Direct path: take the target's lock like the NIC would.
    auto& mtx = *w->global->rma_locks[static_cast<std::size_t>(target)];
    rt::Backoff backoff;
    if (type == LockType::Exclusive) {
      while (!mtx.try_lock()) {
        progress();
        backoff.pause();
      }
    } else {
      while (!mtx.try_lock_shared()) {
        progress();
        backoff.pause();
      }
    }
    held.store(type == LockType::Exclusive ? kLockExclusive : kLockShared,
               std::memory_order_release);
    return Err::Success;
  }

  // Orig: lock request AM; wait for the grant (recorded by the AM handler).
  held.store(kLockPendingGrant, std::memory_order_release);
  rt::Packet* pkt = rt::PacketPool::alloc();
  pkt->hdr.kind = rt::PacketKind::AmLockReq;
  pkt->hdr.vci = static_cast<std::uint8_t>(w->vci);
  pkt->hdr.src_world = self_;
  pkt->hdr.win_id = w->global->id;
  pkt->hdr.lock_type = static_cast<std::uint32_t>(type);
  fabric_.inject(self_, w->global->world_ranks[static_cast<std::size_t>(target)], pkt);
  rt::Backoff backoff;
  while (held.load(std::memory_order_acquire) == kLockPendingGrant) {
    progress();
    backoff.pause();
  }
  return Err::Success;
}

Err Engine::win_unlock(Rank target, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinUnlock, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinUnlock, target, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  if (target < 0 || target >= w->global->nranks) return Err::Rank;
  std::atomic<std::uint8_t>& state = w->lock_held[static_cast<std::size_t>(target)];
  const std::uint8_t held = state.load(std::memory_order_acquire);
  if (held != kLockShared && held != kLockExclusive) return Err::RmaSync;
  obs::BlockScope block(*this, "Win_unlock");

  // Complete all operations to the target before releasing.
  if (Err e = orig_flush_pending(*w, win, target); !ok(e)) return e;
  if (Err e = rma_wait_acks(*w, 0); !ok(e)) return e;

  if (device_ == DeviceKind::Ch4) {
    auto& mtx = *w->global->rma_locks[static_cast<std::size_t>(target)];
    if (held == kLockExclusive) {
      mtx.unlock();
    } else {
      mtx.unlock_shared();
    }
    state.store(kLockNone, std::memory_order_release);
    return Err::Success;
  }

  state.store(kLockPendingUnlock, std::memory_order_release);
  rt::Packet* pkt = rt::PacketPool::alloc();
  pkt->hdr.kind = rt::PacketKind::AmUnlock;
  pkt->hdr.vci = static_cast<std::uint8_t>(w->vci);
  pkt->hdr.src_world = self_;
  pkt->hdr.win_id = w->global->id;
  pkt->hdr.lock_type =
      static_cast<std::uint32_t>(held == kLockExclusive ? LockType::Exclusive : LockType::Shared);
  fabric_.inject(self_, w->global->world_ranks[static_cast<std::size_t>(target)], pkt);
  rt::Backoff backoff;
  while (state.load(std::memory_order_acquire) == kLockPendingUnlock) {
    progress();
    backoff.pause();
  }
  return Err::Success;
}

Err Engine::win_lock_all(Win win) {
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  for (int t = 0; t < w->global->nranks; ++t) {
    if (Err e = win_lock(LockType::Shared, static_cast<Rank>(t), win); !ok(e)) return e;
  }
  w->epoch.store(WindowLocal::Epoch::LockAll, std::memory_order_relaxed);
  return Err::Success;
}

Err Engine::win_unlock_all(Win win) {
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  w->epoch.store(WindowLocal::Epoch::None, std::memory_order_relaxed);
  for (int t = 0; t < w->global->nranks; ++t) {
    if (Err e = win_unlock(static_cast<Rank>(t), win); !ok(e)) return e;
  }
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Generalized active-target synchronization (PSCW)
// ---------------------------------------------------------------------------
//
// win_post sends a post token to every origin in the exposure group;
// win_start blocks until a token from each target has arrived; win_complete
// flushes the epoch's operations and sends completion tokens; win_wait blocks
// until every origin's completion token has arrived. Tokens are counted
// monotonically so an early-arriving token (before the matching start/wait
// call) is never lost.

namespace {
std::vector<Rank> group_world_ranks(Engine& eng, Group g) {
  int n = 0;
  if (eng.group_size(g, &n) != Err::Success) return {};
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  // Translate through a world group to world ranks.
  Group world = kGroupNull;
  if (eng.comm_group(kCommWorld, &world) != Err::Success) return {};
  std::vector<int> out(static_cast<std::size_t>(n));
  const Err e = eng.group_translate_ranks(g, idx, world, out);
  eng.group_free(&world);
  if (e != Err::Success) return {};
  std::vector<Rank> ranks(out.begin(), out.end());
  return ranks;
}
}  // namespace

Err Engine::win_post(Group group, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinPost, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinPost, 0, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  const std::vector<Rank> origins = group_world_ranks(*this, group);
  if (origins.empty()) {
    int n = 0;
    if (group_size(group, &n) != Err::Success) return Err::Group;
    if (n != 0) return Err::Group;
  }
  w->pscw_exposure_group = origins;
  for (Rank origin : origins) {
    rt::Packet* pkt = rt::PacketPool::alloc();
    pkt->hdr.kind = rt::PacketKind::AmPscwPost;
    pkt->hdr.vci = static_cast<std::uint8_t>(w->vci);
    pkt->hdr.src_world = self_;
    pkt->hdr.win_id = w->global->id;
    fabric_.inject(self_, origin, pkt);
  }
  return Err::Success;
}

Err Engine::win_start(Group group, Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinStart, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinStart, 0, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  const std::vector<Rank> targets = group_world_ranks(*this, group);
  w->pscw_access_group = targets;
  // Wait for a post token from every target.
  const auto need = static_cast<std::uint32_t>(targets.size());
  obs::BlockScope block(*this, "Win_start");
  rt::Backoff backoff;
  while (w->pscw_posts_seen.load(std::memory_order_acquire) < need) {
    progress();
    if (w->pscw_posts_seen.load(std::memory_order_acquire) < need) backoff.pause();
  }
  w->pscw_posts_seen.fetch_sub(need, std::memory_order_relaxed);
  w->epoch.store(WindowLocal::Epoch::Pscw, std::memory_order_relaxed);
  return Err::Success;
}

Err Engine::win_complete(Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinComplete, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinComplete, 0, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  if (w->epoch.load(std::memory_order_relaxed) != WindowLocal::Epoch::Pscw) {
    return Err::RmaSync;
  }
  if (Err e = orig_flush_pending(*w, win, -1); !ok(e)) return e;
  if (Err e = rma_wait_acks(*w, 0); !ok(e)) return e;
  for (Rank target : w->pscw_access_group) {
    rt::Packet* pkt = rt::PacketPool::alloc();
    pkt->hdr.kind = rt::PacketKind::AmPscwComplete;
    pkt->hdr.vci = static_cast<std::uint8_t>(w->vci);
    pkt->hdr.src_world = self_;
    pkt->hdr.win_id = w->global->id;
    fabric_.inject(self_, target, pkt);
  }
  w->pscw_access_group.clear();
  w->epoch.store(WindowLocal::Epoch::None, std::memory_order_relaxed);
  return Err::Success;
}

Err Engine::win_wait(Win win) {
  obs::ProfScope psc(prof_, obs::Callsite::WinWait, prof_win_vci(win), 0);
  obs::RecScope rsc(rec_, obs::Callsite::WinWait, 0, 0, 0, 0);
  WindowLocal* w = win_obj(win);
  if (w == nullptr) return Err::Win;
  const auto expected = static_cast<std::uint32_t>(w->pscw_exposure_group.size());
  obs::BlockScope block(*this, "Win_wait");
  rt::Backoff backoff;
  while (w->pscw_completes_seen.load(std::memory_order_acquire) < expected) {
    progress();
    if (w->pscw_completes_seen.load(std::memory_order_acquire) < expected) backoff.pause();
  }
  w->pscw_completes_seen.fetch_sub(expected, std::memory_order_relaxed);
  w->pscw_exposure_group.clear();
  return Err::Success;
}

// ---------------------------------------------------------------------------
// Target-side active-message servicing
// ---------------------------------------------------------------------------

void Engine::send_am_ack(Rank origin_world, std::uint32_t origin_req, std::uint32_t win_id,
                         std::uint8_t vci) {
  rt::Packet* ack = rt::PacketPool::alloc();
  ack->hdr.kind = rt::PacketKind::AmAck;
  ack->hdr.vci = vci;  // stay on the originating operation's channel
  ack->hdr.src_world = self_;
  ack->hdr.win_id = win_id;
  ack->hdr.origin_req = origin_req;
  fabric_.inject(self_, origin_world, ack);
}

void Engine::handle_am(rt::Packet* pkt) {
  // Locate the local window attached to this global id. The scan reads only
  // the per-slot atomics (in_use, win_id) so it can safely walk windows owned
  // by other channels; once matched, the window's own channel lock -- which
  // the caller holds, because AM traffic for a window always arrives on that
  // window's lane -- serializes us against win_free.
  WindowLocal* w = nullptr;
  for (std::uint32_t i = 0; i < windows_.size(); ++i) {
    WindowLocal* cand = windows_.at(i);
    if (cand != nullptr && cand->in_use.load(std::memory_order_acquire) &&
        cand->win_id.load(std::memory_order_relaxed) == pkt->hdr.win_id) {
      w = cand;
      break;
    }
  }
  if (w == nullptr) {
    rt::PacketPool::free(pkt);
    return;
  }
  const auto my_rank_in_win = [&]() -> std::size_t {
    const auto& wr = w->global->world_ranks;
    for (std::size_t i = 0; i < wr.size(); ++i) {
      if (wr[i] == self_) return i;
    }
    return 0;
  };
  const std::size_t me = my_rank_in_win();
  std::byte* base = w->global->peers[me].base;

  switch (pkt->hdr.kind) {
    case rt::PacketKind::AmPut: {
      std::span<const std::byte> body = pkt->payload;
      if (pkt->hdr.dt != kDatatypeNull) {
        dt::unpack(types_, body.data(), pkt->hdr.total_bytes, base + pkt->hdr.offset,
                   static_cast<int>(pkt->hdr.dt_count), pkt->hdr.dt);
      } else if (auto parsed = dt::deserialize_info(body)) {
        dt::unpack_info(parsed->first, body.data() + parsed->second, pkt->hdr.total_bytes,
                        base + pkt->hdr.offset, static_cast<int>(pkt->hdr.dt_count));
      }
      send_am_ack(pkt->hdr.src_world, pkt->hdr.origin_req, pkt->hdr.win_id, pkt->hdr.vci);
      break;
    }
    case rt::PacketKind::AmAcc: {
      std::lock_guard<std::mutex> lk(*w->global->acc_locks[me]);
      coll::apply_op(static_cast<ReduceOp>(pkt->hdr.op), pkt->hdr.dt, base + pkt->hdr.offset,
                     pkt->payload.data(), pkt->hdr.dt_count);
      send_am_ack(pkt->hdr.src_world, pkt->hdr.origin_req, pkt->hdr.win_id, pkt->hdr.vci);
      break;
    }
    case rt::PacketKind::AmGetReq: {
      rt::Packet* reply = rt::PacketPool::alloc();
      reply->hdr.kind = rt::PacketKind::AmGetReply;
      reply->hdr.vci = pkt->hdr.vci;
      reply->hdr.src_world = self_;
      reply->hdr.win_id = pkt->hdr.win_id;
      reply->hdr.origin_req = pkt->hdr.origin_req;
      if (pkt->hdr.dt != kDatatypeNull) {
        reply->payload.resize(
            dt::packed_size(types_, static_cast<int>(pkt->hdr.dt_count), pkt->hdr.dt));
        dt::pack(types_, base + pkt->hdr.offset, static_cast<int>(pkt->hdr.dt_count),
                 pkt->hdr.dt, reply->payload.data());
      } else if (auto parsed = dt::deserialize_info(pkt->payload)) {
        reply->payload.resize(parsed->first.size * pkt->hdr.dt_count);
        dt::pack_info(parsed->first, base + pkt->hdr.offset,
                      static_cast<int>(pkt->hdr.dt_count), reply->payload.data());
      }
      fabric_.inject(self_, pkt->hdr.src_world, reply);
      break;
    }
    case rt::PacketKind::AmGetAccReq: {
      rt::Packet* reply = rt::PacketPool::alloc();
      reply->hdr.kind = rt::PacketKind::AmGetAccReply;
      reply->hdr.vci = pkt->hdr.vci;
      reply->hdr.src_world = self_;
      reply->hdr.win_id = pkt->hdr.win_id;
      reply->hdr.origin_req = pkt->hdr.origin_req;
      {
        std::lock_guard<std::mutex> lk(*w->global->acc_locks[me]);
        reply->payload.resize(pkt->payload.size());
        std::memcpy(reply->payload.data(), base + pkt->hdr.offset, pkt->payload.size());
        if (static_cast<ReduceOp>(pkt->hdr.op) != ReduceOp::NoOp) {
          coll::apply_op(static_cast<ReduceOp>(pkt->hdr.op), pkt->hdr.dt,
                         base + pkt->hdr.offset, pkt->payload.data(), pkt->hdr.dt_count);
        }
      }
      fabric_.inject(self_, pkt->hdr.src_world, reply);
      break;
    }
    case rt::PacketKind::AmGetReply:
    case rt::PacketKind::AmGetAccReply: {
      if (RequestSlot* slot = req_slot(pkt->hdr.origin_req)) {
        dt::unpack(types_, pkt->payload.data(), pkt->payload.size(), slot->rbuf, slot->rcount,
                   slot->rdt);
        release_request(pkt->hdr.origin_req);
      }
      if (w->outstanding_acks.load(std::memory_order_relaxed) > 0) {
        w->outstanding_acks.fetch_sub(1, std::memory_order_release);
      }
      break;
    }
    case rt::PacketKind::AmAck: {
      if (w->outstanding_acks.load(std::memory_order_relaxed) > 0) {
        w->outstanding_acks.fetch_sub(1, std::memory_order_release);
      }
      break;
    }
    case rt::PacketKind::AmLockReq: {
      const auto type = static_cast<LockType>(pkt->hdr.lock_type);
      const bool grantable =
          type == LockType::Exclusive ? (!w->excl_held && w->shared_count == 0) : !w->excl_held;
      if (grantable) {
        if (type == LockType::Exclusive) {
          w->excl_held = true;
        } else {
          w->shared_count += 1;
        }
        rt::Packet* grant = rt::PacketPool::alloc();
        grant->hdr.kind = rt::PacketKind::AmLockGrant;
        grant->hdr.vci = pkt->hdr.vci;
        grant->hdr.src_world = self_;
        grant->hdr.win_id = pkt->hdr.win_id;
        grant->hdr.lock_type = pkt->hdr.lock_type;
        fabric_.inject(self_, pkt->hdr.src_world, grant);
      } else {
        w->lock_waiters.push_back(WindowLocal::LockWaiter{pkt->hdr.src_world, type});
      }
      break;
    }
    case rt::PacketKind::AmLockGrant: {
      // Mark the grant against the target (the grant's sender).
      const auto& wr = w->global->world_ranks;
      for (std::size_t i = 0; i < wr.size(); ++i) {
        if (wr[i] == pkt->hdr.src_world) {
          w->lock_held[i].store(
              static_cast<LockType>(pkt->hdr.lock_type) == LockType::Exclusive
                  ? kLockExclusive
                  : kLockShared,
              std::memory_order_release);
          break;
        }
      }
      break;
    }
    case rt::PacketKind::AmUnlock: {
      if (static_cast<LockType>(pkt->hdr.lock_type) == LockType::Exclusive) {
        w->excl_held = false;
      } else if (w->shared_count > 0) {
        w->shared_count -= 1;
      }
      // Grant as many queued waiters as the new state allows. Waiters' grants
      // stay on the same channel as the unlock that released them (one window
      // -> one lane, so the vcis coincide).
      while (!w->lock_waiters.empty()) {
        const WindowLocal::LockWaiter next = w->lock_waiters.front();
        const bool grantable = next.type == LockType::Exclusive
                                   ? (!w->excl_held && w->shared_count == 0)
                                   : !w->excl_held;
        if (!grantable) break;
        w->lock_waiters.pop_front();
        if (next.type == LockType::Exclusive) {
          w->excl_held = true;
        } else {
          w->shared_count += 1;
        }
        rt::Packet* grant = rt::PacketPool::alloc();
        grant->hdr.kind = rt::PacketKind::AmLockGrant;
        grant->hdr.vci = pkt->hdr.vci;
        grant->hdr.src_world = self_;
        grant->hdr.win_id = pkt->hdr.win_id;
        grant->hdr.lock_type = static_cast<std::uint32_t>(next.type);
        fabric_.inject(self_, next.origin_world, grant);
      }
      rt::Packet* ack = rt::PacketPool::alloc();
      ack->hdr.kind = rt::PacketKind::AmUnlockAck;
      ack->hdr.vci = pkt->hdr.vci;
      ack->hdr.src_world = self_;
      ack->hdr.win_id = pkt->hdr.win_id;
      fabric_.inject(self_, pkt->hdr.src_world, ack);
      break;
    }
    case rt::PacketKind::AmPscwPost: {
      w->pscw_posts_seen.fetch_add(1, std::memory_order_release);
      break;
    }
    case rt::PacketKind::AmPscwComplete: {
      w->pscw_completes_seen.fetch_add(1, std::memory_order_release);
      break;
    }
    case rt::PacketKind::AmUnlockAck: {
      const auto& wr = w->global->world_ranks;
      for (std::size_t i = 0; i < wr.size(); ++i) {
        if (wr[i] == pkt->hdr.src_world) {
          w->lock_held[i].store(kLockNone, std::memory_order_release);
          break;
        }
      }
      break;
    }
    default:
      break;
  }
  rt::PacketPool::free(pkt);
}

}  // namespace lwmpi
