// MPI message-matching engine: posted-receive and unexpected-message queues.
//
// Matching is on the (context, source, tag) triple with MPI wildcard
// semantics and strict ordering: an incoming message matches the *oldest*
// compatible posted receive, and a posted receive matches the oldest
// compatible unexpected message. The paper's _NOMATCH proposal (Section 3.6)
// is supported via arrival-order entries that match on context alone.
//
// One MatchEngine is instantiated per VCI (core/vci.hpp), not per engine:
// each channel matches independently under its own lock, so traffic on
// different channels never contends on (or reorders through) a shared queue
// pair. Cross-VCI isolation is structural -- a context id hashes to exactly
// one channel, so a message can never find a receive posted on another VCI.
#pragma once

#include <cstdint>
#include <list>
#include <optional>

#include "common/types.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::match {

struct PostedRecv {
  std::uint32_t ctx = 0;
  Rank src = kAnySource;  // may be kAnySource
  Tag tag = kAnyTag;      // may be kAnyTag
  rt::MatchMode mode = rt::MatchMode::Full;
  void* buf = nullptr;
  int count = 0;
  Datatype dt = kDatatypeNull;
  std::uint32_t req = 0;  // request to complete on match
};

class MatchEngine {
 public:
  MatchEngine() = default;
  ~MatchEngine();
  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  // Try to satisfy `r` from the unexpected queue. If a message is pending the
  // retained packet is returned (ownership to caller) and `r` is NOT queued;
  // otherwise `r` joins the posted queue.
  std::optional<rt::Packet*> post(const PostedRecv& r);

  // Route an arriving first packet (Eager or Rts). If a posted receive
  // matches it is removed and returned; otherwise the packet is retained on
  // the unexpected queue (ownership to the engine) and nullopt is returned.
  std::optional<PostedRecv> arrive(rt::Packet* p);

  // Non-destructive probe of the unexpected queue.
  const rt::PacketHeader* probe(std::uint32_t ctx, Rank src, Tag tag) const;

  // Cancel a posted receive by request id. True if found and removed.
  bool cancel(std::uint32_t req);

  std::size_t posted_depth() const noexcept { return posted_.size(); }
  std::size_t unexpected_depth() const noexcept { return unexpected_.size(); }

 private:
  static bool matches(const PostedRecv& r, const rt::PacketHeader& h) noexcept;

  std::list<PostedRecv> posted_;
  std::list<rt::Packet*> unexpected_;
};

}  // namespace lwmpi::match
