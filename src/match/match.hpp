// MPI message-matching engine: posted-receive and unexpected-message queues.
//
// Matching is on the (context, source, tag) triple with MPI wildcard
// semantics and strict ordering: an incoming message matches the *oldest*
// compatible posted receive, and a posted receive matches the oldest
// compatible unexpected message. The paper's _NOMATCH proposal (Section 3.6)
// is supported via arrival-order entries that match on context alone.
//
// One MatchEngine is instantiated per VCI (core/vci.hpp), not per engine:
// each channel matches independently under its own lock, so traffic on
// different channels never contends on (or reorders through) a shared queue
// pair. Cross-VCI isolation is structural -- a context id hashes to exactly
// one channel, so a message can never find a receive posted on another VCI.
#pragma once

#include <cstdint>
#include <list>
#include <optional>

#include "common/types.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::match {

struct PostedRecv {
  std::uint32_t ctx = 0;
  Rank src = kAnySource;  // may be kAnySource
  Tag tag = kAnyTag;      // may be kAnyTag
  rt::MatchMode mode = rt::MatchMode::Full;
  void* buf = nullptr;
  int count = 0;
  Datatype dt = kDatatypeNull;
  std::uint32_t req = 0;       // request to complete on match
  std::uint64_t posted_ns = 0; // obs::lat_now_ns() at post time (0 = unstamped)
};

// Unexpected-queue entry: the retained packet plus its arrival timestamp, so
// introspection can report entry age and the latency tier can account the
// time a message waited for its receive to be posted.
struct Unexpected {
  rt::Packet* pkt = nullptr;
  std::uint64_t arrived_ns = 0;
};

class MatchEngine {
 public:
  MatchEngine() = default;
  ~MatchEngine();
  MatchEngine(const MatchEngine&) = delete;
  MatchEngine& operator=(const MatchEngine&) = delete;

  // Try to satisfy `r` from the unexpected queue. If a message is pending the
  // retained packet is returned (ownership to caller) and `r` is NOT queued;
  // otherwise `r` joins the posted queue. When `arrived_ns` is non-null and a
  // packet is returned, it receives the packet's unexpected-queue arrival
  // stamp (0 if arrivals were unstamped).
  std::optional<rt::Packet*> post(const PostedRecv& r,
                                  std::uint64_t* arrived_ns = nullptr);

  // Route an arriving first packet (Eager or Rts). If a posted receive
  // matches it is removed and returned; otherwise the packet is retained on
  // the unexpected queue (ownership to the engine, stamped with
  // obs::lat_now_ns() when stamping is on) and nullopt is returned.
  std::optional<PostedRecv> arrive(rt::Packet* p);

  // Non-destructive probe of the unexpected queue.
  const rt::PacketHeader* probe(std::uint32_t ctx, Rank src, Tag tag) const;

  // Cancel a posted receive by request id. True if found and removed.
  bool cancel(std::uint32_t req);

  std::size_t posted_depth() const noexcept { return posted_.size(); }
  std::size_t unexpected_depth() const noexcept { return unexpected_.size(); }

  // Arrival-timestamp stamping follows BuildConfig::counters (set once before
  // the world's rank threads start); defaults on so standalone engines (unit
  // tests) exercise the stamped path.
  void set_stamp_arrivals(bool on) noexcept { stamp_arrivals_ = on; }

  // Const visitors for the introspection tier (obs/introspect.cpp). Called
  // under the owning channel's lock; entries are visited oldest-first.
  template <typename F>  // F(const PostedRecv&)
  void visit_posted(F&& f) const {
    for (const PostedRecv& r : posted_) f(r);
  }
  template <typename F>  // F(const rt::PacketHeader&, std::uint64_t arrived_ns)
  void visit_unexpected(F&& f) const {
    for (const Unexpected& u : unexpected_) f(u.pkt->hdr, u.arrived_ns);
  }

 private:
  static bool matches(const PostedRecv& r, const rt::PacketHeader& h) noexcept;

  std::list<PostedRecv> posted_;
  std::list<Unexpected> unexpected_;
  bool stamp_arrivals_ = true;
};

}  // namespace lwmpi::match
