#include "match/match.hpp"

#include "obs/histogram.hpp"

namespace lwmpi::match {

MatchEngine::~MatchEngine() {
  for (const Unexpected& u : unexpected_) rt::PacketPool::free(u.pkt);
}

bool MatchEngine::matches(const PostedRecv& r, const rt::PacketHeader& h) noexcept {
  if (r.ctx != h.ctx) return false;
  // Arrival-order (_NOMATCH) traffic only pairs with arrival-order receives,
  // and vice versa; within the mode, context isolation is the only bit kept.
  if (r.mode != h.match_mode) return false;
  if (r.mode == rt::MatchMode::ArrivalOrder) return true;
  if (r.src != kAnySource && r.src != h.src_comm_rank) return false;
  if (r.tag != kAnyTag && r.tag != h.tag) return false;
  return true;
}

std::optional<rt::Packet*> MatchEngine::post(const PostedRecv& r,
                                             std::uint64_t* arrived_ns) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(r, it->pkt->hdr)) {
      rt::Packet* p = it->pkt;
      if (arrived_ns != nullptr) *arrived_ns = it->arrived_ns;
      unexpected_.erase(it);
      return p;
    }
  }
  posted_.push_back(r);
  return std::nullopt;
}

std::optional<PostedRecv> MatchEngine::arrive(rt::Packet* p) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(*it, p->hdr)) {
      PostedRecv r = *it;
      posted_.erase(it);
      return r;
    }
  }
  unexpected_.push_back({p, stamp_arrivals_ ? obs::lat_now_ns() : 0});
  return std::nullopt;
}

const rt::PacketHeader* MatchEngine::probe(std::uint32_t ctx, Rank src, Tag tag) const {
  PostedRecv probe_entry;
  probe_entry.ctx = ctx;
  probe_entry.src = src;
  probe_entry.tag = tag;
  for (const Unexpected& u : unexpected_) {
    if (matches(probe_entry, u.pkt->hdr)) return &u.pkt->hdr;
  }
  return nullptr;
}

bool MatchEngine::cancel(std::uint32_t req) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->req == req) {
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace lwmpi::match
