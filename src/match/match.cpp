#include "match/match.hpp"

namespace lwmpi::match {

MatchEngine::~MatchEngine() {
  for (rt::Packet* p : unexpected_) rt::PacketPool::free(p);
}

bool MatchEngine::matches(const PostedRecv& r, const rt::PacketHeader& h) noexcept {
  if (r.ctx != h.ctx) return false;
  // Arrival-order (_NOMATCH) traffic only pairs with arrival-order receives,
  // and vice versa; within the mode, context isolation is the only bit kept.
  if (r.mode != h.match_mode) return false;
  if (r.mode == rt::MatchMode::ArrivalOrder) return true;
  if (r.src != kAnySource && r.src != h.src_comm_rank) return false;
  if (r.tag != kAnyTag && r.tag != h.tag) return false;
  return true;
}

std::optional<rt::Packet*> MatchEngine::post(const PostedRecv& r) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(r, (*it)->hdr)) {
      rt::Packet* p = *it;
      unexpected_.erase(it);
      return p;
    }
  }
  posted_.push_back(r);
  return std::nullopt;
}

std::optional<PostedRecv> MatchEngine::arrive(rt::Packet* p) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(*it, p->hdr)) {
      PostedRecv r = *it;
      posted_.erase(it);
      return r;
    }
  }
  unexpected_.push_back(p);
  return std::nullopt;
}

const rt::PacketHeader* MatchEngine::probe(std::uint32_t ctx, Rank src, Tag tag) const {
  PostedRecv probe_entry;
  probe_entry.ctx = ctx;
  probe_entry.src = src;
  probe_entry.tag = tag;
  for (const rt::Packet* p : unexpected_) {
    if (matches(probe_entry, p->hdr)) return &p->hdr;
  }
  return nullptr;
}

bool MatchEngine::cancel(std::uint32_t req) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (it->req == req) {
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace lwmpi::match
