// Netmod backend factory. Each backend lives in its own translation unit and
// exports an internal make_* function; this is the single name-to-backend
// dispatch point the Fabric facade (and tests) go through.
#include <stdexcept>
#include <string>

#include "net/netmod.hpp"

namespace lwmpi::net {

std::unique_ptr<Netmod> make_mailbox_netmod(int nranks, int ranks_per_node,
                                            Profile profile, int lanes_per_rank);
std::unique_ptr<Netmod> make_rdma_netmod(int nranks, int ranks_per_node, Profile profile,
                                         int lanes_per_rank);

std::unique_ptr<Netmod> make_netmod(std::string_view name, int nranks, int ranks_per_node,
                                    Profile profile, int lanes_per_rank) {
  if (name == "mailbox") {
    return make_mailbox_netmod(nranks, ranks_per_node, std::move(profile), lanes_per_rank);
  }
  if (name == "rdma") {
    return make_rdma_netmod(nranks, ranks_per_node, std::move(profile), lanes_per_rank);
  }
  // A silently substituted transport would invalidate every per-backend
  // measurement downstream, so an unknown name is a hard error.
  throw std::invalid_argument("lwmpi: unknown netmod '" + std::string(name) +
                              "' (known: mailbox, rdma)");
}

}  // namespace lwmpi::net
