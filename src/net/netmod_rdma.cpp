// "rdma" netmod: RDMA-style injection semantics, modeled on MPICH2 over
// InfiniBand (Liu et al.) and pMR's connection-less endpoint design.
//
// Mechanisms, and how they differ from the mailbox transport:
//
//   * Connection-less endpoints: the only per-destination state is the
//     destination's receive ring -- there is no per-peer connection object,
//     queue pair, or handshake. Any rank may write to any other at any time.
//   * Eager over RDMA write: every packet is "written" into a pre-registered
//     per-(rank, vci) receive ring of bounded depth. Senders consume a ring
//     credit per packet and busy-wait (with backoff) when the ring is full;
//     the receiving engine returns the credit once it has copied the packet
//     out (Netmod::credit_return, called from core/progress.cpp). Ring
//     occupancy and credit stalls are exported as pvars.
//   * Rendezvous zero-copy: register_memory pins buffers through an LRU
//     registration cache (hit/miss/eviction pvars; misses busy-wait the
//     profile's pin cost per page, evictions the unpin cost) and returns an
//     rkey; rdma_write then moves the payload straight into the remote buffer
//     with a single copy and no intermediate packet staging.
//
// The ring depth, pin cost, and cache capacity come from net::Profile
// (rdma_ring_depth, pin_cost_ns_per_page, reg_cache_capacity), so cost
// profiles keep owning the numbers while this backend owns the mechanism.
#include <atomic>
#include <cstring>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/netmod.hpp"
#include "runtime/backoff.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::net {

namespace {

constexpr std::uint64_t kPageShift = 12;  // 4 KiB pages, the common host size

class RdmaNetmod final : public Netmod {
 public:
  RdmaNetmod(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank)
      : Netmod(nranks, ranks_per_node, std::move(profile), lanes_per_rank),
        ring_depth_(profile_.rdma_ring_depth < 1 ? 1 : profile_.rdma_ring_depth) {
    rings_.reserve(static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(lanes_));
    for (int i = 0; i < nranks_ * lanes_; ++i) {
      rings_.push_back(std::make_unique<Ring>(ring_depth_));
    }
    ranks_ = std::make_unique<RankState[]>(static_cast<std::size_t>(nranks_));
  }

  ~RdmaNetmod() override {
    for (auto& ring : rings_) {
      for (rt::Packet* p : ring->staged) rt::PacketPool::free(p);
      while (rt::Packet* p = ring->queue.pop()) rt::PacketPool::free(p);
    }
  }

  std::string_view name() const noexcept override { return "rdma"; }

  void inject(Rank src, Rank dst, rt::Packet* p) noexcept override {
    const bool local = same_node(src, dst);
    rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);

    if (profile_.blackhole) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      rt::PacketPool::free(p);
      return;
    }

    const std::uint64_t latency = local ? profile_.shm_latency_ns : profile_.latency_ns;
    // An RdvDone control packet trails the one-sided data written by
    // rdma_write: its own payload is empty, but it must not overtake the
    // wire time of the data it confirms, so it carries that serialization.
    const std::uint64_t wire_bytes = p->hdr.kind == rt::PacketKind::RdvDone
                                         ? p->hdr.total_bytes
                                         : p->payload.size();
    const std::uint64_t wire = profile_.serialization_ns(wire_bytes);
    p->deliver_at_ns = (latency || wire) ? rt::now_ns() + latency + wire : 0;

    const int lane = p->hdr.vci < lanes_ ? p->hdr.vci : 0;
    Ring& ring = *rings_[index(dst, lane)];
    const std::uint64_t stall = acquire_credit(ring, src);
    // Carry the credit-stall duration in the causal header so the receiver's
    // wait classifier can attribute the delay without reaching back into the
    // backend (saturating: a >4s stall is a hang, not a classification case).
    p->hdr.stall_ns = stall > UINT32_MAX ? UINT32_MAX : static_cast<std::uint32_t>(stall);
    ring.injected.fetch_add(1, std::memory_order_release);
    ring.injected_bytes.fetch_add(p->payload.size(), std::memory_order_relaxed);
    ranks_[static_cast<std::size_t>(dst)].injected.fetch_add(1, std::memory_order_release);
    ring.queue.push(p);
  }

  void charge_injection(Rank src, Rank dst) noexcept override {
    const bool local = same_node(src, dst);
    rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);
  }

  rt::Packet* poll(Rank self, int vci) noexcept override {
    Ring& ring = *rings_[index(self, vci)];
    while (rt::Packet* p = ring.queue.pop()) ring.staged.push_back(p);
    if (ring.staged.empty()) return nullptr;
    rt::Packet* front = ring.staged.front();
    if (front->deliver_at_ns != 0 && front->deliver_at_ns > rt::now_ns()) return nullptr;
    ring.staged.pop_front();
    ring.delivered.fetch_add(1, std::memory_order_relaxed);
    ring.delivered_bytes.fetch_add(front->payload.size(), std::memory_order_relaxed);
    ranks_[static_cast<std::size_t>(self)].delivered.fetch_add(1, std::memory_order_relaxed);
    // The credit is NOT returned here: the slot stays occupied until the
    // engine has copied the packet out of the ring (credit_return).
    return front;
  }

  std::uint64_t pending(Rank self, int vci) const noexcept override {
    const Ring& ring = *rings_[index(self, vci)];
    return ring.injected.load(std::memory_order_acquire) -
           ring.delivered.load(std::memory_order_relaxed);
  }

  std::uint64_t pending_any(Rank self) const noexcept override {
    const RankState& m = ranks_[static_cast<std::size_t>(self)];
    return m.injected.load(std::memory_order_acquire) -
           m.delivered.load(std::memory_order_relaxed);
  }

  bool idle(Rank self) noexcept override {
    for (int v = 0; v < lanes_; ++v) {
      Ring& ring = *rings_[index(self, v)];
      if (!ring.staged.empty() || !ring.queue.empty()) return false;
    }
    return true;
  }

  std::uint64_t injected(Rank r, int vci) const noexcept override {
    return rings_[index(r, vci)]->injected.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered(Rank r, int vci) const noexcept override {
    return rings_[index(r, vci)]->delivered.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_bytes(Rank r, int vci) const noexcept override {
    return rings_[index(r, vci)]->injected_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_bytes(Rank r, int vci) const noexcept override {
    return rings_[index(r, vci)]->delivered_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept override {
    return dropped_.load(std::memory_order_relaxed);
  }

  // --- RDMA extensions --------------------------------------------------------

  bool rdma_capable() const noexcept override { return true; }

  std::uint64_t register_memory(Rank self, const void* base, std::size_t bytes) override {
    RankState& rs = ranks_[static_cast<std::size_t>(self)];
    const std::uint64_t addr = reinterpret_cast<std::uint64_t>(base);
    const std::uint64_t first_page = addr >> kPageShift;
    const std::uint64_t last_page = (addr + (bytes == 0 ? 0 : bytes - 1)) >> kPageShift;
    const std::uint64_t npages = last_page - first_page + 1;

    std::uint64_t pin_pages = 0;
    {
      std::lock_guard<std::mutex> lk(rs.cache.mu);
      auto it = rs.cache.by_page.find(first_page);
      if (it != rs.cache.by_page.end() && it->second->last_page >= last_page) {
        rs.reg_hits.fetch_add(1, std::memory_order_relaxed);
        // LRU touch.
        rs.cache.lru.splice(rs.cache.lru.begin(), rs.cache.lru, it->second);
      } else {
        rs.reg_misses.fetch_add(1, std::memory_order_relaxed);
        pin_pages = npages;
        if (it != rs.cache.by_page.end()) {
          // Same base, longer range: grow the registration in place.
          it->second->last_page = last_page;
          rs.cache.lru.splice(rs.cache.lru.begin(), rs.cache.lru, it->second);
        } else {
          rs.cache.lru.push_front(RegEntry{first_page, last_page});
          rs.cache.by_page[first_page] = rs.cache.lru.begin();
          const std::size_t cap =
              profile_.reg_cache_capacity < 1 ? 1
                                              : static_cast<std::size_t>(
                                                    profile_.reg_cache_capacity);
          while (rs.cache.lru.size() > cap) {
            const RegEntry victim = rs.cache.lru.back();
            rs.cache.by_page.erase(victim.first_page);
            rs.cache.lru.pop_back();
            rs.reg_evictions.fetch_add(1, std::memory_order_relaxed);
            // Unpinning walks the same page list as pinning but skips the
            // kernel fault path; model it at half the pin cost.
            rt::spin_for_ns((victim.last_page - victim.first_page + 1) *
                            profile_.pin_cost_ns_per_page / 2);
          }
        }
      }
    }
    if (pin_pages != 0) rt::spin_for_ns(pin_pages * profile_.pin_cost_ns_per_page);
    return addr;
  }

  void rdma_write(Rank src, Rank dst, const void* from, std::uint64_t rkey,
                  std::size_t bytes) noexcept override {
    const bool local = same_node(src, dst);
    rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);
    RankState& rs = ranks_[static_cast<std::size_t>(src)];
    rs.zcopy_writes.fetch_add(1, std::memory_order_relaxed);
    rs.zcopy_bytes.fetch_add(bytes, std::memory_order_relaxed);
    // The one-sided data movement: one copy, straight into the registered
    // remote buffer. No packet, no staging.
    std::memcpy(reinterpret_cast<void*>(rkey), from, bytes);
  }

  void credit_return(Rank self, int vci) noexcept override {
    const int lane = vci >= 0 && vci < lanes_ ? vci : 0;
    rings_[index(self, lane)]->credits.fetch_add(1, std::memory_order_release);
  }

  std::uint64_t stat(NetStat s, Rank self, int vci) const noexcept override {
    const RankState& rs = ranks_[static_cast<std::size_t>(self)];
    switch (s) {
      case NetStat::RegCacheHit: return rs.reg_hits.load(std::memory_order_relaxed);
      case NetStat::RegCacheMiss: return rs.reg_misses.load(std::memory_order_relaxed);
      case NetStat::RegCacheEviction:
        return rs.reg_evictions.load(std::memory_order_relaxed);
      case NetStat::RingStall: return rs.ring_stalls.load(std::memory_order_relaxed);
      case NetStat::RingStallNs:
        return rs.stall_ns_total.load(std::memory_order_relaxed);
      case NetStat::RingCredits: {
        // Free credits on one lane, or the scarcest lane when vci is -1 --
        // hangdump wants "how close to credit exhaustion is this rank".
        if (vci >= 0 && vci < lanes_) {
          const int c = rings_[index(self, vci)]->credits.load(std::memory_order_relaxed);
          return c < 0 ? 0 : static_cast<std::uint64_t>(c);
        }
        int m = ring_depth_;
        for (int v = 0; v < lanes_; ++v) {
          const int c = rings_[index(self, v)]->credits.load(std::memory_order_relaxed);
          if (c < m) m = c;
        }
        return m < 0 ? 0 : static_cast<std::uint64_t>(m);
      }
      case NetStat::RegCacheSize: {
        std::lock_guard<std::mutex> lk(rs.cache.mu);
        return rs.cache.lru.size();
      }
      case NetStat::ZeroCopyWrite: return rs.zcopy_writes.load(std::memory_order_relaxed);
      case NetStat::ZeroCopyBytes: return rs.zcopy_bytes.load(std::memory_order_relaxed);
      case NetStat::RingOccupancyHwm: {
        if (vci >= 0 && vci < lanes_) {
          return rings_[index(self, vci)]->occupancy_hwm.load(std::memory_order_relaxed);
        }
        std::uint64_t m = 0;
        for (int v = 0; v < lanes_; ++v) {
          const std::uint64_t h =
              rings_[index(self, v)]->occupancy_hwm.load(std::memory_order_relaxed);
          if (h > m) m = h;
        }
        return m;
      }
    }
    return 0;
  }

 private:
  // Bounded receive ring for one (rank, vci) endpoint lane. The MPSC queue
  // carries the packets; `credits` is the free-slot count senders draw from.
  struct Ring {
    explicit Ring(int depth) : credits(depth) {}
    rt::MpscQueue<rt::Packet> queue;
    std::deque<rt::Packet*> staged;  // consumer-owned, matured-order staging
    std::atomic<int> credits;
    std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> injected_bytes{0};
    std::atomic<std::uint64_t> delivered_bytes{0};
    std::atomic<std::uint64_t> occupancy_hwm{0};
  };

  struct RegEntry {
    std::uint64_t first_page = 0;
    std::uint64_t last_page = 0;
  };

  // LRU registration cache, keyed by the region's first page. One per rank
  // (registrations belong to the process that owns the memory), guarded by a
  // mutex because a rank's MPI calls may come from several user threads.
  struct RegCache {
    mutable std::mutex mu;  // mutable: const stat() readers take a size snapshot
    std::list<RegEntry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<RegEntry>::iterator> by_page;
  };

  // Per-rank endpoint state, cache-line separated across ranks.
  struct alignas(64) RankState {
    std::atomic<std::uint64_t> injected{0};  // pending_any meter (traffic *to* rank)
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> reg_hits{0};
    std::atomic<std::uint64_t> reg_misses{0};
    std::atomic<std::uint64_t> reg_evictions{0};
    std::atomic<std::uint64_t> ring_stalls{0};  // counted against the sender
    std::atomic<std::uint64_t> stall_ns_total{0};  // total credit-stall ns (vs sender)
    std::atomic<std::uint64_t> zcopy_writes{0};
    std::atomic<std::uint64_t> zcopy_bytes{0};
    RegCache cache;
  };

  std::size_t index(Rank r, int vci) const noexcept {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(vci);
  }

  // Draw one credit, busy-waiting (with backoff) while the ring is full.
  // Returns the nanoseconds spent stalled (0 on the fast path).
  std::uint64_t acquire_credit(Ring& ring, Rank src) noexcept {
    rt::Backoff backoff;
    std::uint64_t stall_start = 0;
    for (;;) {
      int c = ring.credits.load(std::memory_order_acquire);
      while (c > 0) {
        if (ring.credits.compare_exchange_weak(c, c - 1, std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
          const std::uint64_t occ =
              static_cast<std::uint64_t>(ring_depth_ - (c - 1));
          std::uint64_t hwm = ring.occupancy_hwm.load(std::memory_order_relaxed);
          while (occ > hwm && !ring.occupancy_hwm.compare_exchange_weak(
                                  hwm, occ, std::memory_order_relaxed)) {
          }
          if (stall_start == 0) return 0;
          const std::uint64_t stall = rt::now_ns() - stall_start;
          ranks_[static_cast<std::size_t>(src)].stall_ns_total.fetch_add(
              stall, std::memory_order_relaxed);
          return stall;
        }
      }
      if (stall_start == 0) {
        stall_start = rt::now_ns();
        ranks_[static_cast<std::size_t>(src)].ring_stalls.fetch_add(
            1, std::memory_order_relaxed);
      }
      backoff.pause();
    }
  }

  const int ring_depth_;
  std::vector<std::unique_ptr<Ring>> rings_;  // nranks x lanes, row-major
  std::unique_ptr<RankState[]> ranks_;        // one per rank
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace

std::unique_ptr<Netmod> make_rdma_netmod(int nranks, int ranks_per_node, Profile profile,
                                         int lanes_per_rank) {
  return std::make_unique<RdmaNetmod>(nranks, ranks_per_node, std::move(profile),
                                      lanes_per_rank);
}

}  // namespace lwmpi::net
