// Pluggable network-module (netmod) interface.
//
// The paper's fig3/fig4 crossovers were measured on two genuinely different
// injection semantics (OFI/PSM2 vs UCX/EDR). To let the reproduction re-derive
// those crossovers per *mechanism* rather than per cost profile, the transport
// behind the Fabric facade is a backend implementing this interface:
//
//   * "mailbox" -- the original transport: one unbounded MPSC mailbox per
//     (rank, vci) lane, per-message injection cost, maturation latency.
//   * "rdma"    -- RDMA-style semantics modeled on MPICH2-over-InfiniBand and
//     pMR's connection-less endpoints: eager packets are RDMA-written into
//     pre-registered per-(rank, vci) rings of bounded depth (senders consume
//     credits, the receiving engine returns them after copy-out), large
//     transfers move zero-copy via registered-buffer handoff, and buffer
//     registration goes through an LRU cache over simulated pin/unpin costs.
//
// The interface is the contract the Engine's progress/pt2pt/RMA paths program
// against: inject / charge_injection / poll / pending / pending_any / idle
// plus per-lane traffic counters. RDMA-semantics extensions (registration,
// one-sided write, credit return) default to "unsupported" so a backend only
// implements what its mechanism provides; callers must gate zero-copy paths
// on rdma_capable().
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "net/profile.hpp"

namespace lwmpi::rt {
struct Packet;
}

namespace lwmpi::net {

// Backend-side statistics surfaced through the pvar registry (obs/pvar.cpp).
// Backends without a given mechanism report 0 (the Netmod default).
enum class NetStat : std::uint8_t {
  RegCacheHit,       // registration resolved from the cache
  RegCacheMiss,      // registration paid the pin cost
  RegCacheEviction,  // LRU entry unpinned to make room
  RingOccupancyHwm,  // per-(rank, vci) eager-ring occupancy high-water mark
  RingStall,         // injections that waited for a ring credit
  RingStallNs,       // total ns injections busy-waited for a credit (vs sender)
  RingCredits,       // current free credits on a (rank, vci) ring (-1 vci: min)
  RegCacheSize,      // current LRU registration-cache entry count
  ZeroCopyWrite,     // rdma_write transfers issued by this rank
  ZeroCopyBytes,     // payload bytes moved by those rdma_write transfers
};

class Netmod {
 public:
  Netmod(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank)
      : nranks_(nranks),
        ranks_per_node_(ranks_per_node < 1 ? 1 : ranks_per_node),
        lanes_(lanes_per_rank < 1 ? 1 : lanes_per_rank),
        profile_(std::move(profile)) {}
  virtual ~Netmod() = default;
  Netmod(const Netmod&) = delete;
  Netmod& operator=(const Netmod&) = delete;

  virtual std::string_view name() const noexcept = 0;

  // --- mandatory transport operations ---------------------------------------
  // Send `p` to rank `dst` on the lane named by p->hdr.vci; takes ownership.
  // Pays the injection cost and stamps the maturation time.
  virtual void inject(Rank src, Rank dst, rt::Packet* p) noexcept = 0;
  // Pay the per-message injection cost without transmitting anything (the ch4
  // direct/simulated-RDMA RMA path: the NIC consumes a descriptor slot even
  // though no software-visible packet flows).
  virtual void charge_injection(Rank src, Rank dst) noexcept = 0;
  // Consume one matured packet from `self`'s lane `vci`, or nullptr. The
  // caller must serialize consumers per lane (the Engine's VCI lock does).
  virtual rt::Packet* poll(Rank self, int vci) noexcept = 0;
  // Lock-free "is there possibly work" tests used by the progress poll set.
  virtual std::uint64_t pending(Rank self, int vci) const noexcept = 0;
  virtual std::uint64_t pending_any(Rank self) const noexcept = 0;
  // True if no packet is currently visible for `self` on any lane.
  virtual bool idle(Rank self) noexcept = 0;
  // Per-lane traffic counters (observability / pvar export).
  virtual std::uint64_t injected(Rank r, int vci) const noexcept = 0;
  virtual std::uint64_t delivered(Rank r, int vci) const noexcept = 0;
  // Per-lane payload byte counters (telemetry bytes/sec rates). Backends that
  // predate the telemetry plane may report 0; both in-tree backends count.
  virtual std::uint64_t injected_bytes(Rank r, int vci) const noexcept {
    (void)r;
    (void)vci;
    return 0;
  }
  virtual std::uint64_t delivered_bytes(Rank r, int vci) const noexcept {
    (void)r;
    (void)vci;
    return 0;
  }
  // Packets dropped at the injection boundary (blackhole methodology).
  virtual std::uint64_t dropped() const noexcept = 0;

  // --- RDMA-semantics extensions (default: not provided) ---------------------
  // True when the backend supports registered-buffer handoff: register_memory
  // returns usable rkeys and rdma_write moves data without a staging copy.
  virtual bool rdma_capable() const noexcept { return false; }
  // Register [base, base+bytes) for remote access on behalf of `self`; pays
  // the (cached) pin cost and returns an rkey token, or 0 if unsupported. The
  // token is valid for the world's lifetime (windows/buffers are never
  // unpinned mid-transfer in this simulation; eviction only re-pins later).
  virtual std::uint64_t register_memory(Rank self, const void* base, std::size_t bytes) {
    (void)self;
    (void)base;
    (void)bytes;
    return 0;
  }
  // One-sided write of `bytes` from `from` into the remote region named by
  // `rkey` (as returned by the peer's register_memory). Pays the injection
  // cost; the data movement itself is the copy. Completion must still be
  // signaled by the caller (an RdvDone control packet).
  virtual void rdma_write(Rank src, Rank dst, const void* from, std::uint64_t rkey,
                          std::size_t bytes) noexcept {
    (void)src;
    (void)dst;
    (void)from;
    (void)rkey;
    (void)bytes;
  }
  // Return one eager-ring credit for `self`'s lane `vci` after the consuming
  // engine has copied a polled packet out of the ring (core/progress.cpp).
  virtual void credit_return(Rank self, int vci) noexcept {
    (void)self;
    (void)vci;
  }
  // Backend statistic, or 0 when the mechanism does not exist. `vci` is
  // meaningful only for lane-scoped stats (RingOccupancyHwm); -1 sums lanes.
  virtual std::uint64_t stat(NetStat s, Rank self, int vci) const noexcept {
    (void)s;
    (void)self;
    (void)vci;
    return 0;
  }

  // --- shared topology --------------------------------------------------------
  int nranks() const noexcept { return nranks_; }
  int ranks_per_node() const noexcept { return ranks_per_node_; }
  int lanes_per_rank() const noexcept { return lanes_; }
  int node_of(Rank r) const noexcept { return static_cast<int>(r) / ranks_per_node_; }
  bool same_node(Rank a, Rank b) const noexcept { return node_of(a) == node_of(b); }
  const Profile& profile() const noexcept { return profile_; }

 protected:
  const int nranks_;
  const int ranks_per_node_;
  const int lanes_;
  const Profile profile_;
};

// Backend factory. Known names: "mailbox", "rdma". Unknown names are a hard
// configuration error (std::invalid_argument) -- a silently substituted
// transport would invalidate every per-backend measurement downstream.
std::unique_ptr<Netmod> make_netmod(std::string_view name, int nranks, int ranks_per_node,
                                    Profile profile, int lanes_per_rank);

}  // namespace lwmpi::net
