// "mailbox" netmod: the original simulated transport, unchanged in behavior.
//
// One unbounded MPSC mailbox per (rank, vci) lane. Injection busy-waits the
// profile's per-message cost (NIC occupancy) and stamps a maturation time
// (wire latency + serialization); the receiving rank's progress engine only
// sees a packet once it has matured. This backend is the baseline every
// committed BENCH_* artifact was measured against, so its semantics must not
// drift: the rdma backend exists precisely so new mechanisms do not have to
// be retrofitted here.
#include <atomic>
#include <deque>
#include <memory>
#include <vector>

#include "net/netmod.hpp"
#include "runtime/backoff.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::net {

namespace {

class MailboxNetmod final : public Netmod {
 public:
  MailboxNetmod(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank)
      : Netmod(nranks, ranks_per_node, std::move(profile), lanes_per_rank) {
    boxes_.reserve(static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(lanes_));
    for (int i = 0; i < nranks_ * lanes_; ++i) boxes_.push_back(std::make_unique<Mailbox>());
    meters_ = std::make_unique<RankMeter[]>(static_cast<std::size_t>(nranks_));
  }

  ~MailboxNetmod() override {
    for (auto& box : boxes_) {
      for (rt::Packet* p : box->staged) rt::PacketPool::free(p);
      while (rt::Packet* p = box->queue.pop()) rt::PacketPool::free(p);
    }
  }

  std::string_view name() const noexcept override { return "mailbox"; }

  void inject(Rank src, Rank dst, rt::Packet* p) noexcept override {
    const bool local = same_node(src, dst);
    const std::uint64_t inject_cost =
        local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns;
    rt::spin_for_ns(inject_cost);

    if (profile_.blackhole) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      rt::PacketPool::free(p);
      return;
    }

    const std::uint64_t latency = local ? profile_.shm_latency_ns : profile_.latency_ns;
    const std::uint64_t wire = profile_.serialization_ns(p->payload.size());
    p->deliver_at_ns = (latency || wire) ? rt::now_ns() + latency + wire : 0;

    const int lane = p->hdr.vci < lanes_ ? p->hdr.vci : 0;
    Mailbox& box = *boxes_[index(dst, lane)];
    box.injected.fetch_add(1, std::memory_order_release);
    box.injected_bytes.fetch_add(p->payload.size(), std::memory_order_relaxed);
    meters_[static_cast<std::size_t>(dst)].injected.fetch_add(1, std::memory_order_release);
    box.queue.push(p);
  }

  void charge_injection(Rank src, Rank dst) noexcept override {
    const bool local = same_node(src, dst);
    rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);
  }

  rt::Packet* poll(Rank self, int vci) noexcept override {
    Mailbox& box = *boxes_[index(self, vci)];
    // Drain newly arrived packets into the staging deque so maturation does
    // not reorder them relative to each other.
    while (rt::Packet* p = box.queue.pop()) box.staged.push_back(p);
    if (box.staged.empty()) return nullptr;
    rt::Packet* front = box.staged.front();
    if (front->deliver_at_ns != 0 && front->deliver_at_ns > rt::now_ns()) return nullptr;
    box.staged.pop_front();
    box.delivered.fetch_add(1, std::memory_order_relaxed);
    box.delivered_bytes.fetch_add(front->payload.size(), std::memory_order_relaxed);
    meters_[static_cast<std::size_t>(self)].delivered.fetch_add(1,
                                                               std::memory_order_relaxed);
    return front;
  }

  std::uint64_t pending(Rank self, int vci) const noexcept override {
    const Mailbox& box = *boxes_[index(self, vci)];
    return box.injected.load(std::memory_order_acquire) -
           box.delivered.load(std::memory_order_relaxed);
  }

  std::uint64_t pending_any(Rank self) const noexcept override {
    const RankMeter& m = meters_[static_cast<std::size_t>(self)];
    return m.injected.load(std::memory_order_acquire) -
           m.delivered.load(std::memory_order_relaxed);
  }

  bool idle(Rank self) noexcept override {
    for (int v = 0; v < lanes_; ++v) {
      Mailbox& box = *boxes_[index(self, v)];
      if (!box.staged.empty() || !box.queue.empty()) return false;
    }
    return true;
  }

  std::uint64_t injected(Rank r, int vci) const noexcept override {
    return boxes_[index(r, vci)]->injected.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered(Rank r, int vci) const noexcept override {
    return boxes_[index(r, vci)]->delivered.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_bytes(Rank r, int vci) const noexcept override {
    return boxes_[index(r, vci)]->injected_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_bytes(Rank r, int vci) const noexcept override {
    return boxes_[index(r, vci)]->delivered_bytes.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept override {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Mailbox {
    rt::MpscQueue<rt::Packet> queue;
    // Consumer-owned staging area for packets popped but not yet matured.
    std::deque<rt::Packet*> staged;
    std::atomic<std::uint64_t> injected{0};  // packets sent *to* this lane
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> injected_bytes{0};  // payload bytes, same scoping
    std::atomic<std::uint64_t> delivered_bytes{0};
  };

  // Whole-rank counters backing pending_any(). Cache-line separated so two
  // ranks' meters never false-share.
  struct RankMeter {
    alignas(64) std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> delivered{0};
  };

  std::size_t index(Rank r, int vci) const noexcept {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(vci);
  }

  std::vector<std::unique_ptr<Mailbox>> boxes_;  // nranks x lanes, row-major
  std::unique_ptr<RankMeter[]> meters_;          // one per rank
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace

std::unique_ptr<Netmod> make_mailbox_netmod(int nranks, int ranks_per_node, Profile profile,
                                            int lanes_per_rank) {
  return std::make_unique<MailboxNetmod>(nranks, ranks_per_node, std::move(profile),
                                         lanes_per_rank);
}

}  // namespace lwmpi::net
