#include "net/fabric.hpp"

namespace lwmpi::net {

Fabric::Fabric(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank,
               std::string_view netmod)
    : mod_(make_netmod(netmod, nranks, ranks_per_node, std::move(profile),
                       lanes_per_rank)),
      clock_(std::make_unique<std::atomic<std::uint64_t>[]>(
          static_cast<std::size_t>(nranks < 1 ? 1 : nranks))) {}

Fabric::~Fabric() = default;

}  // namespace lwmpi::net
