#include "net/fabric.hpp"

#include "runtime/backoff.hpp"

namespace lwmpi::net {

Fabric::Fabric(int nranks, int ranks_per_node, Profile profile)
    : nranks_(nranks),
      ranks_per_node_(ranks_per_node < 1 ? 1 : ranks_per_node),
      profile_(std::move(profile)) {
  boxes_.reserve(static_cast<std::size_t>(nranks_));
  for (int i = 0; i < nranks_; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

Fabric::~Fabric() {
  for (auto& box : boxes_) {
    for (rt::Packet* p : box->staged) rt::PacketPool::free(p);
    while (rt::Packet* p = box->queue.pop()) rt::PacketPool::free(p);
  }
}

void Fabric::inject(Rank src, Rank dst, rt::Packet* p) noexcept {
  const bool local = same_node(src, dst);
  const std::uint64_t inject_cost =
      local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns;
  rt::spin_for_ns(inject_cost);

  if (profile_.blackhole) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    rt::PacketPool::free(p);
    return;
  }

  const std::uint64_t latency = local ? profile_.shm_latency_ns : profile_.latency_ns;
  const std::uint64_t wire = profile_.serialization_ns(p->payload.size());
  p->deliver_at_ns = (latency || wire) ? rt::now_ns() + latency + wire : 0;

  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  box.injected.fetch_add(1, std::memory_order_relaxed);
  box.queue.push(p);
}

void Fabric::charge_injection(Rank src, Rank dst) noexcept {
  const bool local = same_node(src, dst);
  rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);
}

rt::Packet* Fabric::poll(Rank self) noexcept {
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  // Drain newly arrived packets into the staging deque so maturation does not
  // reorder them relative to each other.
  while (rt::Packet* p = box.queue.pop()) box.staged.push_back(p);
  if (box.staged.empty()) return nullptr;
  rt::Packet* front = box.staged.front();
  if (front->deliver_at_ns != 0 && front->deliver_at_ns > rt::now_ns()) return nullptr;
  box.staged.pop_front();
  ++box.delivered;
  return front;
}

bool Fabric::idle(Rank self) noexcept {
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  return box.staged.empty() && box.queue.empty();
}

}  // namespace lwmpi::net
