#include "net/fabric.hpp"

namespace lwmpi::net {

Fabric::Fabric(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank,
               std::string_view netmod)
    : mod_(make_netmod(netmod, nranks, ranks_per_node, std::move(profile),
                       lanes_per_rank)) {}

Fabric::~Fabric() = default;

}  // namespace lwmpi::net
