#include "net/fabric.hpp"

#include "runtime/backoff.hpp"

namespace lwmpi::net {

Fabric::Fabric(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank)
    : nranks_(nranks),
      ranks_per_node_(ranks_per_node < 1 ? 1 : ranks_per_node),
      lanes_(lanes_per_rank < 1 ? 1 : lanes_per_rank),
      profile_(std::move(profile)) {
  boxes_.reserve(static_cast<std::size_t>(nranks_) * static_cast<std::size_t>(lanes_));
  for (int i = 0; i < nranks_ * lanes_; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  meters_ = std::make_unique<RankMeter[]>(static_cast<std::size_t>(nranks_));
}

Fabric::~Fabric() {
  for (auto& box : boxes_) {
    for (rt::Packet* p : box->staged) rt::PacketPool::free(p);
    while (rt::Packet* p = box->queue.pop()) rt::PacketPool::free(p);
  }
}

void Fabric::inject(Rank src, Rank dst, rt::Packet* p) noexcept {
  const bool local = same_node(src, dst);
  const std::uint64_t inject_cost =
      local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns;
  rt::spin_for_ns(inject_cost);

  if (profile_.blackhole) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    rt::PacketPool::free(p);
    return;
  }

  const std::uint64_t latency = local ? profile_.shm_latency_ns : profile_.latency_ns;
  const std::uint64_t wire = profile_.serialization_ns(p->payload.size());
  p->deliver_at_ns = (latency || wire) ? rt::now_ns() + latency + wire : 0;

  const int lane = p->hdr.vci < lanes_ ? p->hdr.vci : 0;
  Mailbox& box = *boxes_[index(dst, lane)];
  box.injected.fetch_add(1, std::memory_order_release);
  meters_[static_cast<std::size_t>(dst)].injected.fetch_add(1, std::memory_order_release);
  box.queue.push(p);
}

void Fabric::charge_injection(Rank src, Rank dst) noexcept {
  const bool local = same_node(src, dst);
  rt::spin_for_ns(local ? profile_.shm_inject_cost_ns : profile_.inject_cost_ns);
}

rt::Packet* Fabric::poll(Rank self, int vci) noexcept {
  Mailbox& box = *boxes_[index(self, vci)];
  // Drain newly arrived packets into the staging deque so maturation does not
  // reorder them relative to each other.
  while (rt::Packet* p = box.queue.pop()) box.staged.push_back(p);
  if (box.staged.empty()) return nullptr;
  rt::Packet* front = box.staged.front();
  if (front->deliver_at_ns != 0 && front->deliver_at_ns > rt::now_ns()) return nullptr;
  box.staged.pop_front();
  box.delivered.fetch_add(1, std::memory_order_relaxed);
  meters_[static_cast<std::size_t>(self)].delivered.fetch_add(1, std::memory_order_relaxed);
  return front;
}

bool Fabric::idle(Rank self) noexcept {
  for (int v = 0; v < lanes_; ++v) {
    Mailbox& box = *boxes_[index(self, v)];
    if (!box.staged.empty() || !box.queue.empty()) return false;
  }
  return true;
}

}  // namespace lwmpi::net
