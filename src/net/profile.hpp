// Network cost profiles for the simulated fabric.
//
// The paper evaluates on Intel Omni-Path (PSM2), Mellanox EDR (UCX), and an
// "infinitely fast network" where the MPI stack runs fully but no data is
// transmitted. We model a network as a fixed per-message injection cost (the
// dominant term for the 1-byte messages the paper's rate benchmarks use), a
// delivery latency, and a bandwidth term for large payloads.
#pragma once

#include <cstdint>
#include <string>

namespace lwmpi::net {

struct Profile {
  std::string name = "loopback";
  // Per-message sender-side injection cost, busy-waited (models NIC doorbell
  // + descriptor write + HW pipeline occupancy for one message).
  std::uint64_t inject_cost_ns = 0;      // inter-node
  std::uint64_t shm_inject_cost_ns = 0;  // intra-node (shmmod path)
  // One-way delivery latency added to each packet's maturation time.
  std::uint64_t latency_ns = 0;          // inter-node
  std::uint64_t shm_latency_ns = 0;      // intra-node
  // Serialization bandwidth in bytes/us (0 = infinite).
  std::uint64_t bytes_per_us = 0;
  // Infinitely-fast-network methodology: the stack runs in full but packets
  // are dropped at the injection boundary instead of being transmitted.
  bool blackhole = false;
  // --- rdma-backend parameters (ignored by the mailbox backend) -------------
  // Cost to pin one 4 KiB page when a registration misses the cache (the
  // get_user_pages + IOMMU-map path); unpinning on eviction costs half this.
  std::uint64_t pin_cost_ns_per_page = 0;
  // Registered-region entries the LRU registration cache holds per rank.
  std::uint64_t reg_cache_capacity = 64;
  // Credit depth of each pre-registered per-(rank, vci) eager receive ring.
  int rdma_ring_depth = 1024;

  std::uint64_t serialization_ns(std::uint64_t bytes) const noexcept {
    if (bytes_per_us == 0) return 0;
    // Divide before multiplying: `bytes * 1000` wraps for payloads past
    // ~18.4 PB/1000, and a wrapped product silently under-charges large
    // transfers. Split into whole microseconds plus a sub-us remainder; the
    // remainder product is < bytes_per_us * 1000 so it cannot overflow.
    const std::uint64_t whole_us = bytes / bytes_per_us;
    const std::uint64_t rem = bytes % bytes_per_us;
    return whole_us * 1000 + (rem * 1000) / bytes_per_us;
  }
};

// Zero-cost profile for functional tests.
inline Profile loopback() { return Profile{}; }

// Intel Omni-Path / PSM2-like cost shape (Figure 3 testbed, "IT" cluster).
inline Profile psm2() {
  Profile p;
  p.name = "sim-ofi-psm2";
  p.inject_cost_ns = 95;
  p.shm_inject_cost_ns = 30;
  p.latency_ns = 900;
  p.shm_latency_ns = 150;
  p.bytes_per_us = 12'000;  // ~12 GB/s
  p.pin_cost_ns_per_page = 220;  // get_user_pages + IOMMU map, per 4 KiB page
  return p;
}

// Mellanox EDR / UCX-like cost shape (Figure 4 testbed, "Gomez" cluster).
inline Profile ucx_edr() {
  Profile p;
  p.name = "sim-ucx-edr";
  p.inject_cost_ns = 120;
  p.shm_inject_cost_ns = 30;
  p.latency_ns = 800;
  p.shm_latency_ns = 150;
  p.bytes_per_us = 12'000;
  p.pin_cost_ns_per_page = 180;  // mlx5 reg_mr is slightly cheaper than OPA's
  return p;
}

// Figure 5/6 methodology: full stack, no transmission.
inline Profile infinite() {
  Profile p;
  p.name = "infinitely-fast";
  p.blackhole = true;
  return p;
}

// Blue Gene/Q-like profile for the application studies (Figures 7 and 8):
// modest per-message cost, relatively high latency, so that small-message
// traffic at the strong-scaling limit is latency-dominated.
inline Profile bgq() {
  Profile p;
  p.name = "sim-bgq";
  p.inject_cost_ns = 250;
  p.shm_inject_cost_ns = 60;
  p.latency_ns = 1800;
  p.shm_latency_ns = 300;
  p.bytes_per_us = 1'800;  // ~1.8 GB/s per link
  return p;
}

}  // namespace lwmpi::net
