// The simulated fabric: a facade over a pluggable netmod backend.
//
// This is the reproduction's stand-in for the cluster interconnect. Ranks are
// grouped into simulated nodes; intra-node traffic takes the shmmod cost
// parameters and inter-node traffic the netmod parameters. The transport
// mechanism itself -- how injection, delivery, and flow control work -- lives
// behind the Netmod interface (net/netmod.hpp): "mailbox" is the original
// unbounded per-(rank, vci) MPSC transport, "rdma" models eager-over-RDMA-write
// rings, a registration cache, and zero-copy rendezvous handoff.
//
// Every call site in core/, rma/, obs/, and bench/ programs against this
// facade, so swapping backends never touches the engine. The facade also owns
// the vci bounds policy: an out-of-range lane index falls back to lane 0 on
// every operation, symmetric with inject's long-standing behavior, so a
// corrupted or miscomputed vci can skew a counter but never read out of
// bounds.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "net/netmod.hpp"
#include "net/profile.hpp"
#include "obs/histogram.hpp"
#include "obs/profiler.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::rt {
struct Packet;
}

namespace lwmpi::net {

class Fabric {
 public:
  // `netmod` selects the backend ("mailbox" or "rdma"); unknown names throw
  // std::invalid_argument (see make_netmod).
  Fabric(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank = 1,
         std::string_view netmod = "mailbox");
  ~Fabric();  // the backend reclaims undelivered packets

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::string_view backend_name() const noexcept { return mod_->name(); }

  int nranks() const noexcept { return mod_->nranks(); }
  int ranks_per_node() const noexcept { return mod_->ranks_per_node(); }
  int lanes_per_rank() const noexcept { return mod_->lanes_per_rank(); }
  int node_of(Rank r) const noexcept { return mod_->node_of(r); }
  bool same_node(Rank a, Rank b) const noexcept { return mod_->same_node(a, b); }
  const Profile& profile() const noexcept { return mod_->profile(); }

  // Send `p` to rank `dst`, on the lane named by p->hdr.vci (out-of-range vci
  // falls back to lane 0). Takes ownership. Busy-waits the injection cost,
  // stamps latency, and enqueues into the destination lane. In blackhole mode
  // the packet is dropped at this boundary (Figure 5/6 methodology).
  //
  // The facade stamps the causal header here -- Lamport tick plus send
  // timestamp -- so both backends carry it without transport changes:
  //   L := ++clock[src];  hdr.lclock = L;  hdr.send_ns = lat_now_ns().
  //
  // The aggregate profiler's rank x rank communication matrix is stamped at
  // the same boundary for the same reason. The stamp sits before the backend
  // call (the backend frees the packet on drop paths), but set_profiler
  // refuses blackhole worlds, so matrix bytes track the backends' own
  // injected_bytes counters exactly (the profcheck invariant).
  void inject(Rank src, Rank dst, rt::Packet* p) noexcept {
    if (src >= 0 && src < nranks()) {
      p->hdr.lclock =
          clock_[static_cast<std::size_t>(src)].fetch_add(1, std::memory_order_relaxed) +
          1;
    }
    p->hdr.send_ns = obs::lat_now_ns();
    if (prof_ != nullptr) prof_->on_inject(src, dst, p->hdr.kind, p->payload.size());
    mod_->inject(src, dst, p);
  }

  // Pay the per-message injection cost without transmitting anything. Used by
  // the ch4 direct (simulated-RDMA) RMA path: hardware still consumes a
  // descriptor slot per operation even though no software-visible packet flows.
  void charge_injection(Rank src, Rank dst) noexcept { mod_->charge_injection(src, dst); }

  // Consume one matured packet from `self`'s lane `vci`, or nullptr. Must
  // only be called while holding the consuming side of that lane (the Engine
  // serializes on the owning VCI's lock).
  //
  // Merges the Lamport clock on delivery: clock[self] := max(clock[self],
  // hdr.lclock + 1), so any event the receiver records after this poll carries
  // a clock strictly greater than everything that happened-before the send.
  rt::Packet* poll(Rank self, int vci = 0) noexcept {
    rt::Packet* p = mod_->poll(self, lane(vci));
    if (p != nullptr && p->hdr.lclock != 0 && self >= 0 && self < nranks()) {
      auto& c = clock_[static_cast<std::size_t>(self)];
      const std::uint64_t want = p->hdr.lclock + 1;
      std::uint64_t cur = c.load(std::memory_order_relaxed);
      while (cur < want &&
             !c.compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
      }
    }
    return p;
  }

  // Current Lamport clock of `r` (causal trace events snapshot this).
  std::uint64_t lclock(Rank r) const noexcept {
    if (r < 0 || r >= nranks()) return 0;
    return clock_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
  }

  // Injected-minus-delivered count for one lane: a cheap lock-free test for
  // "is there possibly work on this lane" used by the progress poll set.
  std::uint64_t pending(Rank self, int vci) const noexcept {
    return mod_->pending(self, lane(vci));
  }

  // Aggregate of pending() over all of `self`'s lanes, maintained by the
  // backend as a dedicated per-rank counter pair so an idle progress call
  // costs two atomic loads total instead of two per lane.
  std::uint64_t pending_any(Rank self) const noexcept { return mod_->pending_any(self); }

  // True if no packet is currently visible for `self` on any lane.
  bool idle(Rank self) noexcept { return mod_->idle(self); }

  // Aggregate counters over all of a rank's lanes.
  std::uint64_t injected(Rank r) const noexcept {
    std::uint64_t n = 0;
    for (int v = 0; v < lanes_per_rank(); ++v) n += mod_->injected(r, v);
    return n;
  }
  std::uint64_t delivered(Rank r) const noexcept {
    std::uint64_t n = 0;
    for (int v = 0; v < lanes_per_rank(); ++v) n += mod_->delivered(r, v);
    return n;
  }
  // Per-lane counters (observability / pvar export).
  std::uint64_t injected(Rank r, int vci) const noexcept {
    return mod_->injected(r, lane(vci));
  }
  std::uint64_t delivered(Rank r, int vci) const noexcept {
    return mod_->delivered(r, lane(vci));
  }
  // Per-lane payload byte counters (telemetry bytes/sec rates).
  std::uint64_t injected_bytes(Rank r, int vci) const noexcept {
    return mod_->injected_bytes(r, lane(vci));
  }
  std::uint64_t delivered_bytes(Rank r, int vci) const noexcept {
    return mod_->delivered_bytes(r, lane(vci));
  }
  std::uint64_t dropped() const noexcept { return mod_->dropped(); }

  // --- RDMA-semantics extensions (forwarded; no-ops on non-rdma backends) -----
  bool rdma_capable() const noexcept { return mod_->rdma_capable(); }
  std::uint64_t register_memory(Rank self, const void* base, std::size_t bytes) {
    return mod_->register_memory(self, base, bytes);
  }
  void rdma_write(Rank src, Rank dst, const void* from, std::uint64_t rkey,
                  std::size_t bytes) noexcept {
    if (prof_ != nullptr) prof_->on_rdma_write(src, dst, bytes);
    mod_->rdma_write(src, dst, from, rkey, bytes);
  }
  void credit_return(Rank self, int vci) noexcept { mod_->credit_return(self, lane(vci)); }
  std::uint64_t net_stat(NetStat s, Rank self, int vci = -1) const noexcept {
    return mod_->stat(s, self, vci);
  }

  // Attach the aggregate profiler's communication matrix (obs/profiler.hpp);
  // World installs this when profiling is on. Blackhole worlds stay detached:
  // their backends drop packets before counting bytes, and the matrix mirrors
  // the backends' byte counters by construction.
  void set_profiler(obs::Profiler* p) noexcept {
    prof_ = (p != nullptr && !mod_->profile().blackhole) ? p : nullptr;
  }

 private:
  // The facade-wide vci bounds policy: anything outside [0, lanes) reads lane
  // 0, matching inject's fallback, so no index computed from a packet header
  // or caller argument can walk off the lane table.
  int lane(int vci) const noexcept {
    return vci >= 0 && vci < mod_->lanes_per_rank() ? vci : 0;
  }

  std::unique_ptr<Netmod> mod_;
  // Per-rank Lamport logical clocks, ticked at inject and merged at poll.
  std::unique_ptr<std::atomic<std::uint64_t>[]> clock_;
  // Aggregate-profiler hook (null when profiling is off): one predictable
  // branch on the injection path, matching the counters discipline.
  obs::Profiler* prof_ = nullptr;
};

}  // namespace lwmpi::net
