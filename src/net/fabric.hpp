// The simulated fabric: per-rank mailboxes plus the locality map.
//
// This is the reproduction's stand-in for the cluster interconnect. Ranks are
// grouped into simulated nodes; intra-node traffic takes the shmmod cost
// parameters and inter-node traffic the netmod parameters. Injection
// busy-waits the profile's per-message cost (modeling NIC occupancy) and
// stamps a maturation time (modeling wire latency); the receiving rank's
// progress engine only sees a packet once it has matured.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/profile.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::net {

class Fabric {
 public:
  Fabric(int nranks, int ranks_per_node, Profile profile);
  ~Fabric();  // reclaims undelivered packets

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int nranks() const noexcept { return nranks_; }
  int ranks_per_node() const noexcept { return ranks_per_node_; }
  int node_of(Rank r) const noexcept { return static_cast<int>(r) / ranks_per_node_; }
  bool same_node(Rank a, Rank b) const noexcept { return node_of(a) == node_of(b); }
  const Profile& profile() const noexcept { return profile_; }

  // Send `p` to rank `dst`. Takes ownership. Busy-waits the injection cost,
  // stamps latency, and enqueues into the destination mailbox. In blackhole
  // mode the packet is dropped at this boundary (Figure 5/6 methodology).
  void inject(Rank src, Rank dst, rt::Packet* p) noexcept;

  // Pay the per-message injection cost without transmitting anything. Used by
  // the ch4 direct (simulated-RDMA) RMA path: hardware still consumes a
  // descriptor slot per operation even though no software-visible packet flows.
  void charge_injection(Rank src, Rank dst) noexcept;

  // Consume one matured packet destined for `self`, or nullptr. Must only be
  // called from the thread owning rank `self`.
  rt::Packet* poll(Rank self) noexcept;

  // True if no packet is currently visible for `self` (matured or not).
  bool idle(Rank self) noexcept;

  std::uint64_t injected(Rank r) const noexcept {
    return boxes_[static_cast<std::size_t>(r)]->injected.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered(Rank r) const noexcept {
    return boxes_[static_cast<std::size_t>(r)]->delivered;
  }
  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Mailbox {
    rt::MpscQueue<rt::Packet> queue;
    // Consumer-owned staging area for packets popped but not yet matured.
    std::deque<rt::Packet*> staged;
    std::atomic<std::uint64_t> injected{0};  // packets sent *to* this rank
    std::uint64_t delivered = 0;             // consumer-owned
  };

  const int nranks_;
  const int ranks_per_node_;
  const Profile profile_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace lwmpi::net
