// The simulated fabric: per-(rank, vci) mailboxes plus the locality map.
//
// This is the reproduction's stand-in for the cluster interconnect. Ranks are
// grouped into simulated nodes; intra-node traffic takes the shmmod cost
// parameters and inter-node traffic the netmod parameters. Injection
// busy-waits the profile's per-message cost (modeling NIC occupancy) and
// stamps a maturation time (modeling wire latency); the receiving rank's
// progress engine only sees a packet once it has matured.
//
// Each rank owns `lanes_per_rank` independent mailbox lanes -- one per
// virtual communication interface (VCI). A packet's lane is selected by its
// header's vci field, so traffic on different VCIs never contends on a shared
// queue, mirroring MPICH's per-VCI netmod contexts.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/profile.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/packet.hpp"

namespace lwmpi::net {

class Fabric {
 public:
  Fabric(int nranks, int ranks_per_node, Profile profile, int lanes_per_rank = 1);
  ~Fabric();  // reclaims undelivered packets

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int nranks() const noexcept { return nranks_; }
  int ranks_per_node() const noexcept { return ranks_per_node_; }
  int lanes_per_rank() const noexcept { return lanes_; }
  int node_of(Rank r) const noexcept { return static_cast<int>(r) / ranks_per_node_; }
  bool same_node(Rank a, Rank b) const noexcept { return node_of(a) == node_of(b); }
  const Profile& profile() const noexcept { return profile_; }

  // Send `p` to rank `dst`, on the lane named by p->hdr.vci (out-of-range vci
  // falls back to lane 0). Takes ownership. Busy-waits the injection cost,
  // stamps latency, and enqueues into the destination mailbox. In blackhole
  // mode the packet is dropped at this boundary (Figure 5/6 methodology).
  void inject(Rank src, Rank dst, rt::Packet* p) noexcept;

  // Pay the per-message injection cost without transmitting anything. Used by
  // the ch4 direct (simulated-RDMA) RMA path: hardware still consumes a
  // descriptor slot per operation even though no software-visible packet flows.
  void charge_injection(Rank src, Rank dst) noexcept;

  // Consume one matured packet from `self`'s lane `vci`, or nullptr. Must
  // only be called while holding the consuming side of that lane (the Engine
  // serializes on the owning VCI's lock).
  rt::Packet* poll(Rank self, int vci = 0) noexcept;

  // Injected-minus-delivered count for one lane: a cheap lock-free test for
  // "is there possibly work on this lane" used by the progress poll set.
  std::uint64_t pending(Rank self, int vci) const noexcept {
    const Mailbox& box = *boxes_[index(self, vci)];
    return box.injected.load(std::memory_order_acquire) -
           box.delivered.load(std::memory_order_relaxed);
  }

  // Aggregate of pending() over all of `self`'s lanes, maintained as a
  // dedicated per-rank counter pair so an idle progress call costs two atomic
  // loads total instead of two per lane.
  std::uint64_t pending_any(Rank self) const noexcept {
    const RankMeter& m = meters_[static_cast<std::size_t>(self)];
    return m.injected.load(std::memory_order_acquire) -
           m.delivered.load(std::memory_order_relaxed);
  }

  // True if no packet is currently visible for `self` on any lane.
  bool idle(Rank self) noexcept;

  // Aggregate counters over all of a rank's lanes.
  std::uint64_t injected(Rank r) const noexcept {
    std::uint64_t n = 0;
    for (int v = 0; v < lanes_; ++v) {
      n += boxes_[index(r, v)]->injected.load(std::memory_order_relaxed);
    }
    return n;
  }
  std::uint64_t delivered(Rank r) const noexcept {
    std::uint64_t n = 0;
    for (int v = 0; v < lanes_; ++v) {
      n += boxes_[index(r, v)]->delivered.load(std::memory_order_relaxed);
    }
    return n;
  }
  // Per-lane counters (observability / pvar export).
  std::uint64_t injected(Rank r, int vci) const noexcept {
    return boxes_[index(r, vci)]->injected.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered(Rank r, int vci) const noexcept {
    return boxes_[index(r, vci)]->delivered.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Mailbox {
    rt::MpscQueue<rt::Packet> queue;
    // Consumer-owned staging area for packets popped but not yet matured.
    std::deque<rt::Packet*> staged;
    std::atomic<std::uint64_t> injected{0};  // packets sent *to* this lane
    std::atomic<std::uint64_t> delivered{0};
  };

  // Whole-rank counters backing pending_any(). Cache-line separated so two
  // ranks' meters never false-share.
  struct RankMeter {
    alignas(64) std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> delivered{0};
  };

  std::size_t index(Rank r, int vci) const noexcept {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(lanes_) +
           static_cast<std::size_t>(vci);
  }

  const int nranks_;
  const int ranks_per_node_;
  const int lanes_;
  const Profile profile_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;  // nranks x lanes, row-major
  std::unique_ptr<RankMeter[]> meters_;          // one per rank
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace lwmpi::net
